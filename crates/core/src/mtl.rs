//! The multi-task learning module (§II-D, Fig. 3): `L` layers, each with
//! `K` expert networks per sub-module (A, B, and shared S) and one gate
//! per sub-module combining a generic gated unit (Eq. 10/13/14) with an
//! adjusted gated unit driven by the pair embeddings (Eq. 11-13).

use mgbr_autograd::Var;
use mgbr_nn::{Linear, ParamId, ParamStore, StepCtx};
use mgbr_tensor::{Pcg32, Tensor};

use crate::MgbrConfig;

/// Batched pair embeddings `e_u‖e_i`, `e_i‖e_p`, `e_u‖e_p` (each
/// `B × 4d`), the inputs of the adjusted gated units.
pub struct PairEmbeds {
    /// `e_u ‖ e_i` — the pair Task A focuses on.
    pub ui: Var,
    /// `e_i ‖ e_p` — participant preference on the item.
    pub ip: Var,
    /// `e_u ‖ e_p` — initiator/participant preference similarity.
    pub up: Var,
}

impl PairEmbeds {
    /// Assembles the pair embeddings from batched object embeddings.
    pub fn new(e_u: &Var, e_i: &Var, e_p: &Var) -> Self {
        Self {
            ui: Var::concat_cols(&[e_u, e_i]),
            ip: Var::concat_cols(&[e_i, e_p]),
            up: Var::concat_cols(&[e_u, e_p]),
        }
    }
}

/// Gate outputs flowing between layers.
struct LayerState {
    g_a: Var,
    g_b: Var,
    g_s: Option<Var>,
}

/// `K` expert networks sharing an input (Eq. 7-9: bias-free linear maps).
///
/// The `K` per-expert weight matrices are stored as column blocks of one
/// fused `in_dim × K·d` tensor and applied as a single GEMM (the wide
/// product runs ~1.7× faster than `K` narrow ones on this engine's
/// kernels). Because the GEMM accumulates the inner dimension in the same
/// order regardless of output width, each sliced expert output is bitwise
/// identical to what a separate per-expert product would produce.
pub(crate) struct ExpertBank {
    /// Fused weights; expert `e` occupies columns `[e·d, (e+1)·d)`.
    pub(crate) w: ParamId,
    k: usize,
    in_dim: usize,
    out_dim: usize,
}

impl ExpertBank {
    fn new(
        store: &mut ParamStore,
        rng: &mut Pcg32,
        name: &str,
        k: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        // Draw the K Xavier matrices individually (per-expert fan-out, in
        // registration order) so initial values match K separate layers.
        let mut fused = Tensor::zeros(in_dim, k * out_dim);
        for e in 0..k {
            let t = rng.xavier_tensor(in_dim, out_dim);
            for r in 0..in_dim {
                fused.row_mut(r)[e * out_dim..(e + 1) * out_dim].copy_from_slice(t.row(r));
            }
        }
        let w = store.add(format!("{name}.experts.w"), fused);
        Self {
            w,
            k,
            in_dim,
            out_dim,
        }
    }

    fn forward(&self, ctx: &StepCtx<'_>, input: &Var) -> Vec<Var> {
        assert_eq!(
            input.cols(),
            self.in_dim,
            "ExpertBank: input width {} != declared in_dim {}",
            input.cols(),
            self.in_dim
        );
        let all = input.matmul(&ctx.param(self.w));
        (0..self.k)
            .map(|e| all.slice_cols(e * self.out_dim, self.out_dim))
            .collect()
    }
}

/// The adjusted gated unit's pair-projection weights for one task gate.
///
/// Each present projection maps a `B × 4d` pair embedding to `B × K`
/// attention weights over one expert bank (Eq. 11 for A, Eq. 13 for B).
/// Projections that would attend over the shared bank are absent in the
/// MGBR-M variant.
pub(crate) struct AdjustedGate {
    pub(crate) ui: Option<Linear>,
    pub(crate) ip: Option<Linear>,
    pub(crate) up: Option<Linear>,
}

/// One MTL layer (Fig. 3).
pub(crate) struct MtlLayer {
    pub(crate) experts_a: ExpertBank,
    pub(crate) experts_b: ExpertBank,
    pub(crate) experts_s: Option<ExpertBank>,
    pub(crate) gate_a: Linear,
    pub(crate) gate_b: Linear,
    pub(crate) gate_s: Option<Linear>,
    pub(crate) adj_a: Option<AdjustedGate>,
    pub(crate) adj_b: Option<AdjustedGate>,
    /// Feed gate states straight through instead of concatenating
    /// identical copies (first layer with `first_layer_dedup`).
    pub(crate) dedup_inputs: bool,
}

/// The full multi-task learning module.
pub struct MtlModule {
    pub(crate) layers: Vec<MtlLayer>,
    pub(crate) has_shared: bool,
    pub(crate) alpha_a: f32,
    pub(crate) alpha_b: f32,
    pub(crate) gate_softmax: bool,
    out_dim: usize,
}

impl MtlModule {
    /// Registers all expert and gate parameters.
    pub fn new(store: &mut ParamStore, rng: &mut Pcg32, cfg: &MgbrConfig) -> Self {
        cfg.validate();
        let has_shared = cfg.variant.has_shared();
        let has_adjusted = cfg.variant.has_adjusted_gates();
        let k = cfg.n_experts;
        let d = cfg.d;
        let g0 = cfg.g0_dim();
        let pair_dim = 2 * cfg.obj_dim();

        let mut layers = Vec::with_capacity(cfg.mtl_layers);
        for l in 0..cfg.mtl_layers {
            let first = l == 0;
            let dedup = first && cfg.first_layer_dedup;
            // Gate-state widths feeding this layer.
            let state_w = if first { g0 } else { d };
            let in_ab = if dedup || !has_shared {
                state_w
            } else {
                2 * state_w
            };
            let in_s = if dedup { state_w } else { 3 * state_w };

            let name = |part: &str| format!("mtl.l{l}.{part}");
            let experts_a = ExpertBank::new(store, rng, &name("A"), k, in_ab, d);
            let experts_b = ExpertBank::new(store, rng, &name("B"), k, in_ab, d);
            let experts_s = has_shared.then(|| ExpertBank::new(store, rng, &name("S"), k, in_s, d));

            let gate_out_ab = if has_shared { 2 * k } else { k };
            let gate_a = Linear::new(store, rng, &name("gateA"), in_ab, gate_out_ab, false);
            let gate_b = Linear::new(store, rng, &name("gateB"), in_ab, gate_out_ab, false);
            // Gate S on the final layer would feed nothing (only g_A^L and
            // g_B^L reach the prediction module), so it is not built.
            let gate_s = (has_shared && l + 1 < cfg.mtl_layers)
                .then(|| Linear::new(store, rng, &name("gateS"), in_s, 3 * k, false));

            let (adj_a, adj_b) = if has_adjusted {
                let adj = |store: &mut ParamStore, rng: &mut Pcg32, tag: &str, mask: [bool; 3]| {
                    let mk = |store: &mut ParamStore, rng: &mut Pcg32, on: bool, p: &str| {
                        on.then(|| {
                            Linear::new(
                                store,
                                rng,
                                &name(&format!("{tag}.{p}")),
                                pair_dim,
                                k,
                                false,
                            )
                        })
                    };
                    AdjustedGate {
                        ui: mk(store, rng, mask[0], "ui"),
                        ip: mk(store, rng, mask[1], "ip"),
                        up: mk(store, rng, mask[2], "up"),
                    }
                };
                // Gate A: ui→E_A always; ip,up→E_S only when S exists.
                // Gate B: ip,up→E_B always; ui→E_S only when S exists.
                (
                    Some(adj(store, rng, "adjA", [true, has_shared, has_shared])),
                    Some(adj(store, rng, "adjB", [has_shared, true, true])),
                )
            } else {
                (None, None)
            };

            layers.push(MtlLayer {
                experts_a,
                experts_b,
                experts_s,
                gate_a,
                gate_b,
                gate_s,
                adj_a,
                adj_b,
                dedup_inputs: dedup,
            });
        }
        Self {
            layers,
            has_shared,
            alpha_a: cfg.alpha_a,
            alpha_b: cfg.alpha_b,
            gate_softmax: cfg.gate_softmax,
            out_dim: d,
        }
    }

    /// Output width of `g_A^L` / `g_B^L`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Runs all layers on batched object embeddings, returning
    /// `(g_A^L, g_B^L)` (Eq. 15 initialization, Eq. 7-14 per layer).
    pub fn forward(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> (Var, Var) {
        let g0 = Var::concat_cols(&[e_u, e_i, e_p]);
        let pairs = PairEmbeds::new(e_u, e_i, e_p);
        let mut state = LayerState {
            g_a: g0.clone(),
            g_b: g0.clone(),
            g_s: self.has_shared.then_some(g0),
        };
        for (li, layer) in self.layers.iter().enumerate() {
            let _obs = mgbr_obs::span("mtl.layer", "model")
                .arg("layer", li as u64)
                .arg("shared", layer.experts_s.is_some());
            state = self.layer_forward(ctx, layer, &state, &pairs);
        }
        (state.g_a, state.g_b)
    }

    fn layer_forward(
        &self,
        ctx: &StepCtx<'_>,
        layer: &MtlLayer,
        state: &LayerState,
        pairs: &PairEmbeds,
    ) -> LayerState {
        // Expert inputs (Eq. 7-9, with the first-layer dedup resolution).
        let input_a = self.task_input(layer, &state.g_a, state.g_s.as_ref());
        let input_b = self.task_input(layer, &state.g_b, state.g_s.as_ref());
        let input_s = state.g_s.as_ref().map(|g_s| {
            if layer.dedup_inputs {
                g_s.clone()
            } else {
                Var::concat_cols(&[&state.g_a, g_s, &state.g_b])
            }
        });

        let e_a = layer.experts_a.forward(ctx, &input_a);
        let e_b = layer.experts_b.forward(ctx, &input_b);
        let e_s = layer
            .experts_s
            .as_ref()
            .map(|bank| bank.forward(ctx, input_s.as_ref().expect("shared input present")));

        // Gate A (Eq. 10-12).
        let g_a = self.task_gate(
            ctx,
            &layer.gate_a,
            layer.adj_a.as_ref(),
            &input_a,
            pairs,
            &e_a,
            e_s.as_deref(),
            self.alpha_a,
            GateKind::A,
        );
        // Gate B (Eq. 13).
        let g_b = self.task_gate(
            ctx,
            &layer.gate_b,
            layer.adj_b.as_ref(),
            &input_b,
            pairs,
            &e_b,
            e_s.as_deref(),
            self.alpha_b,
            GateKind::B,
        );
        // Gate S (Eq. 14).
        let g_s = layer.gate_s.as_ref().map(|gate| {
            let input = input_s.as_ref().expect("shared input present");
            let weights = self.normalize(gate.forward(ctx, input));
            let all: Vec<&Var> = e_a
                .iter()
                .chain(e_s.as_ref().expect("shared experts present"))
                .chain(&e_b)
                .collect();
            Var::mix_experts(&weights, &all)
        });

        LayerState { g_a, g_b, g_s }
    }

    fn task_input(&self, layer: &MtlLayer, g_task: &Var, g_s: Option<&Var>) -> Var {
        match g_s {
            Some(g_s) if !layer.dedup_inputs => Var::concat_cols(&[g_task, g_s]),
            _ => g_task.clone(),
        }
    }

    fn normalize(&self, weights: Var) -> Var {
        if self.gate_softmax {
            weights.softmax_rows()
        } else {
            weights
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn task_gate(
        &self,
        ctx: &StepCtx<'_>,
        gate_w: &Linear,
        adj: Option<&AdjustedGate>,
        input: &Var,
        pairs: &PairEmbeds,
        own: &[Var],
        shared: Option<&[Var]>,
        alpha: f32,
        kind: GateKind,
    ) -> Var {
        // Generic unit: attention from the layer input over [own ‖ shared].
        let weights = self.normalize(gate_w.forward(ctx, input));
        let mut banks: Vec<&Var> = own.iter().collect();
        if let Some(s) = shared {
            banks.extend(s);
        }
        let g1 = Var::mix_experts(&weights, &banks);

        let Some(adj) = adj else {
            return g1;
        };
        // Adjusted unit: pair-driven attention. Which pair attends over
        // which bank follows Eq. 11 (gate A) / Eq. 13 (gate B).
        let own_refs: Vec<&Var> = own.iter().collect();
        let shared_refs: Vec<&Var> = shared.map(|s| s.iter().collect()).unwrap_or_default();
        let mut g2: Option<Var> = None;
        let mut add_term = |proj: &Option<Linear>, pair: &Var, bank: &[&Var]| {
            if let Some(w) = proj {
                let aw = self.normalize(w.forward(ctx, pair));
                let term = Var::mix_experts(&aw, bank);
                g2 = Some(match g2.take() {
                    Some(acc) => acc.add(&term),
                    None => term,
                });
            }
        };
        match kind {
            GateKind::A => {
                add_term(&adj.ui, &pairs.ui, &own_refs);
                add_term(&adj.ip, &pairs.ip, &shared_refs);
                add_term(&adj.up, &pairs.up, &shared_refs);
            }
            GateKind::B => {
                add_term(&adj.ui, &pairs.ui, &shared_refs);
                add_term(&adj.ip, &pairs.ip, &own_refs);
                add_term(&adj.up, &pairs.up, &own_refs);
            }
        }
        match g2 {
            Some(g2) => g1.add(&g2.scale(alpha)),
            None => g1,
        }
    }
}

enum GateKind {
    A,
    B,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MgbrVariant;
    use mgbr_tensor::Tensor;

    fn build(cfg: &MgbrConfig) -> (ParamStore, MtlModule) {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let mtl = MtlModule::new(&mut store, &mut rng, cfg);
        (store, mtl)
    }

    fn run(cfg: &MgbrConfig, batch: usize) -> (Tensor, Tensor, usize) {
        let (store, mtl) = build(cfg);
        let ctx = StepCtx::new(&store);
        let mut rng = Pcg32::seed_from_u64(9);
        let e = cfg.obj_dim();
        let e_u = ctx.constant(rng.normal_tensor(batch, e, 0.0, 0.5));
        let e_i = ctx.constant(rng.normal_tensor(batch, e, 0.0, 0.5));
        let e_p = ctx.constant(rng.normal_tensor(batch, e, 0.0, 0.5));
        let (ga, gb) = mtl.forward(&ctx, &e_u, &e_i, &e_p);
        (ga.value(), gb.value(), store.scalar_count())
    }

    #[test]
    fn output_shapes_match_d() {
        let cfg = MgbrConfig::tiny();
        let (ga, gb, _) = run(&cfg, 5);
        assert_eq!(ga.rows(), 5);
        assert_eq!(ga.cols(), cfg.d);
        assert_eq!(gb.rows(), 5);
        assert_eq!(gb.cols(), cfg.d);
    }

    #[test]
    fn task_heads_differ() {
        let cfg = MgbrConfig::tiny();
        let (ga, gb, _) = run(&cfg, 5);
        assert_ne!(ga, gb, "gate A and gate B must specialize");
    }

    #[test]
    fn variant_parameter_ordering() {
        // Removing the shared sub-module or the adjusted gates must shed
        // parameters.
        let full = run(&MgbrConfig::tiny(), 2).2;
        let no_shared = run(&MgbrConfig::tiny().with_variant(MgbrVariant::NoShared), 2).2;
        let generic = run(
            &MgbrConfig::tiny().with_variant(MgbrVariant::GenericGates),
            2,
        )
        .2;
        assert!(
            no_shared < full,
            "MGBR-M ({no_shared}) must be smaller than MGBR ({full})"
        );
        assert!(
            generic < full,
            "MGBR-G ({generic}) must be smaller than MGBR ({full})"
        );
    }

    #[test]
    fn paper_weight_shapes_first_layer() {
        // With dedup, each first-layer expert weight is 6d×d for A/B —
        // the shape stated below Eq. 15. Experts live as K column blocks
        // of one fused tensor.
        let cfg = MgbrConfig::tiny();
        let (store, _mtl) = build(&cfg);
        let w = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l0.A.experts"))
            .map(|(_, _, t)| t.shape())
            .expect("first expert bank registered");
        assert_eq!(w.rows, cfg.g0_dim());
        assert_eq!(w.cols, cfg.n_experts * cfg.d);

        // Later layers: 2d×d (A with shared), 3d×d (S).
        let w1 = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l1.A.experts"))
            .map(|(_, _, t)| t.shape())
            .unwrap();
        assert_eq!(w1.rows, 2 * cfg.d);
        let s1 = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l1.S.experts"))
            .map(|(_, _, t)| t.shape())
            .unwrap();
        assert_eq!(s1.rows, 3 * cfg.d);
    }

    #[test]
    fn literal_first_layer_concatenates() {
        let cfg = MgbrConfig {
            first_layer_dedup: false,
            ..MgbrConfig::tiny()
        };
        let (store, _mtl) = build(&cfg);
        let w = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l0.A.experts"))
            .map(|(_, _, t)| t.shape())
            .unwrap();
        assert_eq!(w.rows, 2 * cfg.g0_dim(), "literal Eq. 7 input is g_A⁰‖g_S⁰");
        let (ga, _, _) = run(&cfg, 3);
        assert_eq!(ga.rows(), 3);
    }

    #[test]
    fn gate_softmax_variant_runs() {
        let cfg = MgbrConfig {
            gate_softmax: true,
            ..MgbrConfig::tiny()
        };
        let (ga, gb, _) = run(&cfg, 4);
        assert!(ga.all_finite() && gb.all_finite());
    }

    #[test]
    fn all_variants_forward_cleanly() {
        for v in MgbrVariant::all() {
            if v.uses_hin() {
                continue; // HIN differs only in the embedding module.
            }
            let cfg = MgbrConfig::tiny().with_variant(v);
            let (ga, gb, _) = run(&cfg, 3);
            assert!(ga.all_finite(), "{v:?} produced non-finite g_A");
            assert!(gb.all_finite(), "{v:?} produced non-finite g_B");
        }
    }

    #[test]
    fn alpha_zero_equals_generic_gates_output() {
        // MGBR with α=0 must compute the same forward as having no
        // adjusted unit at all (parameters differ, output path doesn't).
        let cfg_a = MgbrConfig {
            alpha_a: 0.0,
            alpha_b: 0.0,
            ..MgbrConfig::tiny()
        };
        let (store, mtl) = build(&cfg_a);
        let ctx = StepCtx::new(&store);
        let mut rng = Pcg32::seed_from_u64(9);
        let e = cfg_a.obj_dim();
        let e_u = ctx.constant(rng.normal_tensor(3, e, 0.0, 0.5));
        let e_i = ctx.constant(rng.normal_tensor(3, e, 0.0, 0.5));
        let e_p = ctx.constant(rng.normal_tensor(3, e, 0.0, 0.5));
        let (ga, _) = mtl.forward(&ctx, &e_u, &e_i, &e_p);
        assert!(ga.value().all_finite());
        // The adjusted term is scaled by α=0 ⇒ gradients through adj
        // weights vanish but the forward stays finite and well-shaped.
        assert_eq!(ga.cols(), cfg_a.d);
    }

    #[test]
    fn gradients_flow_to_all_expert_banks() {
        let cfg = MgbrConfig::tiny();
        let (store, mtl) = build(&cfg);
        let ctx = StepCtx::new(&store);
        let mut rng = Pcg32::seed_from_u64(10);
        let e = cfg.obj_dim();
        let e_u = ctx.constant(rng.normal_tensor(4, e, 0.0, 0.5));
        let e_i = ctx.constant(rng.normal_tensor(4, e, 0.0, 0.5));
        let e_p = ctx.constant(rng.normal_tensor(4, e, 0.0, 0.5));
        let (ga, gb) = mtl.forward(&ctx, &e_u, &e_i, &e_p);
        let loss = ga.mean_all().add(&gb.mean_all());
        let grads = ctx.backward(&loss);
        // Every parameter bank participates in at least one gate path.
        let mut missing = Vec::new();
        for (id, name, _) in store.iter() {
            if grads.get(id).is_none() {
                missing.push(name.to_string());
            }
        }
        assert!(
            missing.is_empty(),
            "parameters without gradient: {missing:?}"
        );
    }
}
