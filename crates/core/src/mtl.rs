//! The multi-task learning module (§II-D, Fig. 3): `L` layers, each with
//! `K` expert networks per sub-module (A, B, and shared S) and one gate
//! per sub-module combining a generic gated unit (Eq. 10/13/14) with an
//! adjusted gated unit driven by the pair embeddings (Eq. 11-13).
//!
//! Since the execution-plan refactor this module owns no forward code:
//! construction registers the parameters (in the canonical order) and
//! lowers the layer structure to an [`MtlSpec`], and [`MtlModule::forward`]
//! executes the built plan on the autograd tape through the shared
//! interpreter — the same interpreter the frozen scorer runs.

use mgbr_autograd::Var;
use mgbr_nn::{Linear, ParamId, ParamStore, StepCtx};
use mgbr_plan::{
    build_mtl_plan, Bindings, Executor, LayerSpec, LayerTrace, MtlPlan, MtlSpec, Plan, TapedBackend,
};
use mgbr_tensor::{Pcg32, Tensor};

use crate::MgbrConfig;

/// Registers one fused expert bank (Eq. 7-9: `K` bias-free linear maps).
///
/// The `K` per-expert weight matrices are stored as column blocks of one
/// fused `in_dim × K·d` tensor and applied as a single GEMM (the wide
/// product runs ~1.7× faster than `K` narrow ones on this engine's
/// kernels). Because the GEMM accumulates the inner dimension in the same
/// order regardless of output width, each sliced expert output is bitwise
/// identical to what a separate per-expert product would produce. The K
/// Xavier matrices are drawn individually (per-expert fan-out, in
/// registration order) so initial values match K separate layers.
fn expert_bank(
    store: &mut ParamStore,
    rng: &mut Pcg32,
    name: &str,
    k: usize,
    in_dim: usize,
    out_dim: usize,
) -> ParamId {
    let mut fused = Tensor::zeros(in_dim, k * out_dim);
    for e in 0..k {
        let t = rng.xavier_tensor(in_dim, out_dim);
        for r in 0..in_dim {
            fused.row_mut(r)[e * out_dim..(e + 1) * out_dim].copy_from_slice(t.row(r));
        }
    }
    store.add(format!("{name}.experts.w"), fused)
}

/// The full multi-task learning module: the lowered spec, the canonical
/// parameter list, and the executable plan.
pub struct MtlModule {
    /// Layer structure, reused by the model to assemble its score spec.
    pub(crate) spec: MtlSpec,
    /// Parameter handles in the plan's (canonical) declaration order.
    pub(crate) param_ids: Vec<ParamId>,
    plan: MtlPlan,
    out_dim: usize,
}

impl MtlModule {
    /// Registers all expert and gate parameters and builds the plan.
    pub fn new(store: &mut ParamStore, rng: &mut Pcg32, cfg: &MgbrConfig) -> Self {
        cfg.validate();
        let has_shared = cfg.variant.has_shared();
        let has_adjusted = cfg.variant.has_adjusted_gates();
        let k = cfg.n_experts;
        let d = cfg.d;
        let g0 = cfg.g0_dim();
        let pair_dim = 2 * cfg.obj_dim();

        let mut param_ids = Vec::new();
        let mut layer_specs = Vec::with_capacity(cfg.mtl_layers);
        for l in 0..cfg.mtl_layers {
            let first = l == 0;
            let dedup = first && cfg.first_layer_dedup;
            // Gate-state widths feeding this layer.
            let state_w = if first { g0 } else { d };
            let in_ab = if dedup || !has_shared {
                state_w
            } else {
                2 * state_w
            };
            let in_s = if dedup { state_w } else { 3 * state_w };

            let name = |part: &str| format!("mtl.l{l}.{part}");
            param_ids.push(expert_bank(store, rng, &name("A"), k, in_ab, d));
            param_ids.push(expert_bank(store, rng, &name("B"), k, in_ab, d));
            if has_shared {
                param_ids.push(expert_bank(store, rng, &name("S"), k, in_s, d));
            }

            let gate_out_ab = if has_shared { 2 * k } else { k };
            param_ids.push(Linear::new(store, rng, &name("gateA"), in_ab, gate_out_ab, false).w);
            param_ids.push(Linear::new(store, rng, &name("gateB"), in_ab, gate_out_ab, false).w);
            // Gate S on the final layer would feed nothing (only g_A^L and
            // g_B^L reach the prediction module), so it is not built.
            let has_gate_s = has_shared && l + 1 < cfg.mtl_layers;
            if has_gate_s {
                param_ids.push(Linear::new(store, rng, &name("gateS"), in_s, 3 * k, false).w);
            }

            // Gate A: ui→E_A always; ip,up→E_S only when S exists.
            // Gate B: ip,up→E_B always; ui→E_S only when S exists.
            let masks: Option<[[bool; 3]; 2]> =
                has_adjusted.then_some([[true, has_shared, has_shared], [has_shared, true, true]]);
            if let Some([mask_a, mask_b]) = masks {
                for (tag, mask) in [("adjA", mask_a), ("adjB", mask_b)] {
                    for (&on, pair) in mask.iter().zip(["ui", "ip", "up"]) {
                        if on {
                            let pname = name(&format!("{tag}.{pair}"));
                            param_ids.push(Linear::new(store, rng, &pname, pair_dim, k, false).w);
                        }
                    }
                }
            }

            layer_specs.push(LayerSpec {
                dedup_inputs: dedup,
                has_gate_s,
                adj_a: masks.map(|[m, _]| m),
                adj_b: masks.map(|[_, m]| m),
            });
        }
        let spec = MtlSpec {
            has_shared,
            gate_softmax: cfg.gate_softmax,
            alpha_a: cfg.alpha_a,
            alpha_b: cfg.alpha_b,
            layers: layer_specs,
        };
        let plan = build_mtl_plan(&spec);
        assert_eq!(
            plan.plan.params.len(),
            param_ids.len(),
            "plan parameter slots must match the registered parameters"
        );
        Self {
            spec,
            param_ids,
            plan,
            out_dim: d,
        }
    }

    /// Output width of `g_A^L` / `g_B^L`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Runs all layers on batched object embeddings, returning
    /// `(g_A^L, g_B^L)` (Eq. 15 initialization, Eq. 7-14 per layer).
    pub fn forward(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> (Var, Var) {
        let mut outs = run_taped(
            ctx,
            &self.plan.plan,
            &self.plan.layers,
            &self.param_ids,
            &[e_u, e_i, e_p],
        )
        .into_iter();
        let g_a = outs.next().expect("plan returns g_A");
        let g_b = outs.next().expect("plan returns g_B");
        (g_a, g_b)
    }
}

/// Executes a score/MTL plan on the autograd tape, wrapping each MTL
/// layer's op range in its `mtl.layer` trace span. Parameters are bound
/// through [`StepCtx::param`] in the plan's canonical order, so gradients
/// flow to the store exactly as with the hand-written forward.
pub(crate) fn run_taped(
    ctx: &StepCtx<'_>,
    plan: &Plan,
    layers: &[LayerTrace],
    param_ids: &[ParamId],
    inputs: &[&Var],
) -> Vec<Var> {
    let params: Vec<Var> = param_ids.iter().map(|&id| ctx.param(id)).collect();
    let prefs: Vec<&Var> = params.iter().collect();
    let bindings = Bindings::default();
    let mut exec = Executor::new(plan, inputs, &prefs, TapedBackend::new(&bindings));
    for (li, trace) in layers.iter().enumerate() {
        exec.run_to(trace.ops.start);
        let _obs = mgbr_obs::span("mtl.layer", "model")
            .arg("layer", li as u64)
            .arg("shared", trace.shared);
        exec.run_to(trace.ops.end);
    }
    exec.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MgbrVariant;
    use mgbr_tensor::Tensor;

    fn build(cfg: &MgbrConfig) -> (ParamStore, MtlModule) {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let mtl = MtlModule::new(&mut store, &mut rng, cfg);
        (store, mtl)
    }

    fn run(cfg: &MgbrConfig, batch: usize) -> (Tensor, Tensor, usize) {
        let (store, mtl) = build(cfg);
        let ctx = StepCtx::new(&store);
        let mut rng = Pcg32::seed_from_u64(9);
        let e = cfg.obj_dim();
        let e_u = ctx.constant(rng.normal_tensor(batch, e, 0.0, 0.5));
        let e_i = ctx.constant(rng.normal_tensor(batch, e, 0.0, 0.5));
        let e_p = ctx.constant(rng.normal_tensor(batch, e, 0.0, 0.5));
        let (ga, gb) = mtl.forward(&ctx, &e_u, &e_i, &e_p);
        (ga.value(), gb.value(), store.scalar_count())
    }

    #[test]
    fn output_shapes_match_d() {
        let cfg = MgbrConfig::tiny();
        let (ga, gb, _) = run(&cfg, 5);
        assert_eq!(ga.rows(), 5);
        assert_eq!(ga.cols(), cfg.d);
        assert_eq!(gb.rows(), 5);
        assert_eq!(gb.cols(), cfg.d);
    }

    #[test]
    fn task_heads_differ() {
        let cfg = MgbrConfig::tiny();
        let (ga, gb, _) = run(&cfg, 5);
        assert_ne!(ga, gb, "gate A and gate B must specialize");
    }

    #[test]
    fn variant_parameter_ordering() {
        // Removing the shared sub-module or the adjusted gates must shed
        // parameters.
        let full = run(&MgbrConfig::tiny(), 2).2;
        let no_shared = run(&MgbrConfig::tiny().with_variant(MgbrVariant::NoShared), 2).2;
        let generic = run(
            &MgbrConfig::tiny().with_variant(MgbrVariant::GenericGates),
            2,
        )
        .2;
        assert!(
            no_shared < full,
            "MGBR-M ({no_shared}) must be smaller than MGBR ({full})"
        );
        assert!(
            generic < full,
            "MGBR-G ({generic}) must be smaller than MGBR ({full})"
        );
    }

    #[test]
    fn paper_weight_shapes_first_layer() {
        // With dedup, each first-layer expert weight is 6d×d for A/B —
        // the shape stated below Eq. 15. Experts live as K column blocks
        // of one fused tensor.
        let cfg = MgbrConfig::tiny();
        let (store, _mtl) = build(&cfg);
        let w = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l0.A.experts"))
            .map(|(_, _, t)| t.shape())
            .expect("first expert bank registered");
        assert_eq!(w.rows, cfg.g0_dim());
        assert_eq!(w.cols, cfg.n_experts * cfg.d);

        // Later layers: 2d×d (A with shared), 3d×d (S).
        let w1 = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l1.A.experts"))
            .map(|(_, _, t)| t.shape())
            .unwrap();
        assert_eq!(w1.rows, 2 * cfg.d);
        let s1 = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l1.S.experts"))
            .map(|(_, _, t)| t.shape())
            .unwrap();
        assert_eq!(s1.rows, 3 * cfg.d);
    }

    #[test]
    fn literal_first_layer_concatenates() {
        let cfg = MgbrConfig {
            first_layer_dedup: false,
            ..MgbrConfig::tiny()
        };
        let (store, _mtl) = build(&cfg);
        let w = store
            .iter()
            .find(|(_, n, _)| n.starts_with("mtl.l0.A.experts"))
            .map(|(_, _, t)| t.shape())
            .unwrap();
        assert_eq!(w.rows, 2 * cfg.g0_dim(), "literal Eq. 7 input is g_A⁰‖g_S⁰");
        let (ga, _, _) = run(&cfg, 3);
        assert_eq!(ga.rows(), 3);
    }

    #[test]
    fn gate_softmax_variant_runs() {
        let cfg = MgbrConfig {
            gate_softmax: true,
            ..MgbrConfig::tiny()
        };
        let (ga, gb, _) = run(&cfg, 4);
        assert!(ga.all_finite() && gb.all_finite());
    }

    #[test]
    fn all_variants_forward_cleanly() {
        for v in MgbrVariant::all() {
            if v.uses_hin() {
                continue; // HIN differs only in the embedding module.
            }
            let cfg = MgbrConfig::tiny().with_variant(v);
            let (ga, gb, _) = run(&cfg, 3);
            assert!(ga.all_finite(), "{v:?} produced non-finite g_A");
            assert!(gb.all_finite(), "{v:?} produced non-finite g_B");
        }
    }

    #[test]
    fn alpha_zero_equals_generic_gates_output() {
        // MGBR with α=0 must compute the same forward as having no
        // adjusted unit at all (parameters differ, output path doesn't).
        let cfg_a = MgbrConfig {
            alpha_a: 0.0,
            alpha_b: 0.0,
            ..MgbrConfig::tiny()
        };
        let (store, mtl) = build(&cfg_a);
        let ctx = StepCtx::new(&store);
        let mut rng = Pcg32::seed_from_u64(9);
        let e = cfg_a.obj_dim();
        let e_u = ctx.constant(rng.normal_tensor(3, e, 0.0, 0.5));
        let e_i = ctx.constant(rng.normal_tensor(3, e, 0.0, 0.5));
        let e_p = ctx.constant(rng.normal_tensor(3, e, 0.0, 0.5));
        let (ga, _) = mtl.forward(&ctx, &e_u, &e_i, &e_p);
        assert!(ga.value().all_finite());
        // The adjusted term is scaled by α=0 ⇒ gradients through adj
        // weights vanish but the forward stays finite and well-shaped.
        assert_eq!(ga.cols(), cfg_a.d);
    }

    #[test]
    fn gradients_flow_to_all_expert_banks() {
        let cfg = MgbrConfig::tiny();
        let (store, mtl) = build(&cfg);
        let ctx = StepCtx::new(&store);
        let mut rng = Pcg32::seed_from_u64(10);
        let e = cfg.obj_dim();
        let e_u = ctx.constant(rng.normal_tensor(4, e, 0.0, 0.5));
        let e_i = ctx.constant(rng.normal_tensor(4, e, 0.0, 0.5));
        let e_p = ctx.constant(rng.normal_tensor(4, e, 0.0, 0.5));
        let (ga, gb) = mtl.forward(&ctx, &e_u, &e_i, &e_p);
        let loss = ga.mean_all().add(&gb.mean_all());
        let grads = ctx.backward(&loss);
        // Every parameter bank participates in at least one gate path.
        let mut missing = Vec::new();
        for (id, name, _) in store.iter() {
            if grads.get(id).is_none() {
                missing.push(name.to_string());
            }
        }
        assert!(
            missing.is_empty(),
            "parameters without gradient: {missing:?}"
        );
    }
}
