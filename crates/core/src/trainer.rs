//! The MGBR training loop (§II-F): per-epoch negative resampling, joint
//! minibatch optimization of `L = L_A + β·L_B + β_A·L'_A + β_B·L'_B`
//! (Eq. 25) with Adam.
//!
//! ## Crash safety
//!
//! When [`TrainConfig::checkpoint_every`] is set, the loop writes an
//! atomic v2 checkpoint (parameters + Adam moments + RNG state + epoch
//! and step counters) at that epoch cadence; with
//! [`TrainConfig::resume`], a killed run picks up from the last
//! checkpoint and reaches **bitwise-identical** final parameters to an
//! uninterrupted run, at any thread count.
//!
//! ## Divergence recovery
//!
//! With [`TrainConfig::watchdog`] enabled (the default), every optimizer
//! step is screened for numerical anomalies — non-finite loss, a loss
//! spike against the rolling median, non-finite gradients or parameters —
//! and a triggered anomaly rolls the run back to the last good
//! epoch-boundary snapshot, shrinks the learning rate, re-seeds the batch
//! stream, and retries, up to `max_recoveries` times before failing
//! closed with [`TrainError::Diverged`]. See [`crate::watchdog`].

use mgbr_autograd::Tape;
use mgbr_data::{BatchIter, DataSplit, Dataset, Sampler, TaskAInstance, TaskBInstance};
use mgbr_eval::EpochTimer;
use mgbr_nn::checkpoint::{
    load_checkpoint_from_file, save_checkpoint_atomic, AdamState, MemorySnapshot, TrainState,
};
use mgbr_nn::{Adam, GradientSet, NumericFaultArm, Optimizer, ParamStore, StepCtx};
use mgbr_tensor::{configure_threads, Pcg32};

use crate::loss::{aux_a_loss, aux_b_loss, task_a_loss, task_b_loss, AuxSample};
use crate::watchdog::{AnomalyKind, AnomalyReport, TrainError, Watchdog};
use crate::{Mgbr, TrainConfig};

/// What one training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds per epoch (feeds Table V).
    pub epoch_secs: Vec<f64>,
    /// Trainable scalar count (feeds Table V).
    pub param_count: usize,
    /// Total optimizer steps taken across all epochs.
    pub steps: usize,
    /// Watchdog recoveries consumed (rollback + LR-backoff events).
    pub recoveries: usize,
    /// The anomalies that triggered those recoveries, in firing order.
    pub anomalies: Vec<AnomalyReport>,
}

impl TrainReport {
    /// An empty report for a run that executed zero epochs.
    fn empty(param_count: usize) -> Self {
        Self {
            epoch_losses: Vec::new(),
            epoch_secs: Vec::new(),
            param_count,
            steps: 0,
            recoveries: 0,
            anomalies: Vec::new(),
        }
    }

    /// Mean seconds per epoch.
    pub fn mean_epoch_secs(&self) -> f64 {
        if self.epoch_secs.is_empty() {
            0.0
        } else {
            self.epoch_secs.iter().sum::<f64>() / self.epoch_secs.len() as f64
        }
    }

    /// Optimizer steps per wall-clock second (0 if nothing was timed).
    pub fn steps_per_sec(&self) -> f64 {
        let total: f64 = self.epoch_secs.iter().sum();
        if total > 0.0 {
            self.steps as f64 / total
        } else {
            0.0
        }
    }
}

/// One validation epoch in the history returned by
/// [`train_with_validation`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValEntry {
    /// Epoch index (0-based, cumulative across resumes).
    pub epoch: usize,
    /// Validation metric: mean of Task A / Task B MRR@10.
    pub metric: f64,
    /// Whether this entry was replayed from a checkpoint on resume rather
    /// than evaluated by this process (provenance survives resumes).
    pub replayed: bool,
}

/// The raw metric curve of a validation history (what checkpoints store
/// and the early stopper consumes — provenance flags are process-local).
fn raw_metrics(history: &[ValEntry]) -> Vec<f64> {
    history.iter().map(|e| e.metric).collect()
}

/// Opens the flight recorder when configured. [`TrainConfig::trace_path`]
/// takes precedence over the `MGBR_TRACE` environment variable; with
/// neither set, returns `None` and training pays one atomic load per
/// instrumentation hook.
fn trace_session(tc: &TrainConfig) -> Result<Option<mgbr_obs::TraceSession>, TrainError> {
    let path = match &tc.trace_path {
        Some(p) => Some(p.clone()),
        None => std::env::var_os("MGBR_TRACE")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from),
    };
    let Some(path) = path else {
        return Ok(None);
    };
    Ok(Some(mgbr_obs::trace_to(
        &path,
        mgbr_obs::TraceFormat::from_env(),
    )?))
}

/// Steps between journaled metrics snapshots while tracing
/// (`MGBR_METRICS_EVERY`; 0 — the default — snapshots at epoch
/// boundaries only).
fn metrics_every() -> usize {
    std::env::var("MGBR_METRICS_EVERY")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Journals a watchdog anomaly into the flight recorder (no-op when
/// tracing is off).
fn journal_anomaly(report: &AnomalyReport) {
    if !mgbr_obs::enabled() {
        return;
    }
    let mut e = mgbr_obs::event("watchdog.anomaly", "train")
        .arg("kind", report.kind.to_string())
        .arg("epoch", report.epoch as u64)
        .arg("step", report.step as u64)
        .arg("loss", report.loss)
        .arg("recoveries", report.recoveries as u64);
    if let Some(t) = &report.tensor {
        e = e.arg("tensor", t.as_str());
    }
    if let Some(i) = report.first_index {
        e = e.arg("first_index", i as u64);
    }
    drop(e);
}

/// Journals an epoch summary plus a metrics-registry snapshot (pool
/// gauges refreshed first). No-op when tracing is off.
fn journal_epoch(tape: &Tape, epoch: usize, loss: f32, epoch_steps: usize, recoveries: usize) {
    if !mgbr_obs::enabled() {
        return;
    }
    drop(
        mgbr_obs::event("epoch.summary", "train")
            .arg("epoch", epoch as u64)
            .arg("loss", loss)
            .arg("steps", epoch_steps as u64)
            .arg("recoveries", recoveries as u64),
    );
    let ps = tape.pool_stats();
    let reg = mgbr_obs::metrics();
    reg.gauge("pool.live_floats").set(ps.live_floats as i64);
    reg.gauge("pool.hwm_floats").raise_to(ps.hwm_floats as i64);
    reg.gauge("pool.hits").set(ps.hits as i64);
    reg.gauge("pool.misses").set(ps.misses as i64);
    mgbr_obs::emit_metrics("epoch");
}

/// One epoch's sampled training material.
struct EpochData {
    task_a: Vec<TaskAInstance>,
    task_b: Vec<TaskBInstance>,
    aux: Vec<AuxSample>,
}

fn sample_epoch(
    model: &Mgbr,
    full: &Dataset,
    split: &DataSplit,
    tc: &TrainConfig,
    seed: u64,
) -> EpochData {
    let mut sampler = Sampler::new(full, seed);
    let task_a = sampler.task_a_instances(&split.train, tc.n_neg);
    let task_b = sampler.task_b_instances(&split.train, tc.n_neg);
    let aux = if model.cfg.variant.has_aux_losses() {
        let t = model.cfg.t_size;
        let mut aux = Vec::new();
        for g in &split.train {
            for &p in &g.participants {
                let (ci, cp) = sampler.aux_corruptions(g.initiator, g.item, t);
                aux.push(AuxSample {
                    user: g.initiator,
                    item: g.item,
                    participant: p,
                    corrupt_items: ci,
                    corrupt_participants: cp,
                });
            }
        }
        aux
    } else {
        Vec::new()
    };
    EpochData {
        task_a,
        task_b,
        aux,
    }
}

/// The sampling seed for epoch `epoch`, continuous with the uninterrupted
/// schedule (epoch 0 — or every epoch without per-epoch resampling — uses
/// the base seed; later epochs offset it), so a resumed run regenerates
/// the identical epoch data.
fn epoch_data_seed(tc: &TrainConfig, epoch: usize) -> u64 {
    if tc.resample_per_epoch && epoch > 0 {
        tc.seed.wrapping_add(epoch as u64)
    } else {
        tc.seed
    }
}

/// Where a resumed run restarts.
struct ResumePoint {
    start_epoch: usize,
    steps: usize,
    val_history: Vec<f64>,
}

/// Loads `tc.checkpoint_path` if resuming is enabled and the file exists,
/// restoring parameters, optimizer moments, and RNG state in place.
///
/// # Errors
///
/// Returns [`TrainError::Checkpoint`] if the checkpoint is
/// unreadable/corrupt, and [`TrainError::ConfigMismatch`] if it is a
/// legacy v1 file (no training state to resume from) or was written under
/// a different `TrainConfig` fingerprint. A corrupt checkpoint never
/// partially mutates the model: loads are transactional and CRC-verified.
fn try_resume(
    model: &mut Mgbr,
    tc: &TrainConfig,
    adam: &mut Adam,
    rng: &mut Pcg32,
) -> Result<Option<ResumePoint>, TrainError> {
    let Some(path) = tc.checkpoint_path.as_ref() else {
        return Ok(None);
    };
    if !tc.resume || !path.exists() {
        return Ok(None);
    }
    let loaded = load_checkpoint_from_file(&mut model.store, path)?;
    let Some(state) = loaded.state else {
        return Err(TrainError::ConfigMismatch(format!(
            "cannot resume from {}: {} — re-train or load it as parameters only",
            path.display(),
            loaded
                .note
                .map(|n| n.to_string())
                .unwrap_or_else(|| "checkpoint carries no training state".into())
        )));
    };
    if state.config_fingerprint != tc.fingerprint() {
        return Err(TrainError::ConfigMismatch(format!(
            "cannot resume from {}: checkpoint was written under a different TrainConfig",
            path.display()
        )));
    }
    if let Some(r) = state.rng {
        *rng = Pcg32::from_state(r);
    }
    if let Some(a) = state.adam {
        adam.restore_moments(a.t, a.m, a.v);
    }
    Ok(Some(ResumePoint {
        start_epoch: state.epoch as usize,
        steps: state.step as usize,
        val_history: state.val_history,
    }))
}

/// Writes an atomic checkpoint if the cadence (or a forced final write)
/// says so. `epoch_done` counts completed epochs; `total_steps` is
/// cumulative across resumes.
#[allow(clippy::too_many_arguments)]
fn maybe_checkpoint(
    model: &Mgbr,
    tc: &TrainConfig,
    adam: &Adam,
    rng: &Pcg32,
    epoch_done: usize,
    total_steps: usize,
    val_history: &[f64],
    force: bool,
) -> Result<(), TrainError> {
    if tc.checkpoint_every == 0 {
        return Ok(());
    }
    let Some(path) = tc.checkpoint_path.as_ref() else {
        return Ok(());
    };
    if !force && epoch_done % tc.checkpoint_every != 0 && epoch_done != tc.epochs {
        return Ok(());
    }
    let (t, m, v) = adam.export_moments();
    let state = TrainState {
        epoch: epoch_done as u64,
        step: total_steps as u64,
        config_fingerprint: tc.fingerprint(),
        rng: Some(rng.export_state()),
        val_history: val_history.to_vec(),
        adam: Some(AdamState { t, m, v }),
    };
    save_checkpoint_atomic(&model.store, &state, path)?;
    drop(
        mgbr_obs::event("checkpoint.save", "train")
            .arg("epoch", epoch_done as u64)
            .arg("step", total_steps as u64)
            .arg("path", path.display().to_string()),
    );
    Ok(())
}

/// Name and first offending flat index of the first non-finite parameter.
fn first_non_finite_param(store: &ParamStore) -> Option<(String, usize)> {
    store
        .iter()
        .find_map(|(_, name, t)| t.first_non_finite().map(|i| (name.to_string(), i)))
}

/// Name and first offending flat index of the first non-finite gradient.
fn first_non_finite_grad(store: &ParamStore, grads: &GradientSet) -> Option<(String, usize)> {
    store.iter().find_map(|(id, name, _)| {
        grads
            .get(id)
            .and_then(|g| g.first_non_finite())
            .map(|i| (name.to_string(), i))
    })
}

/// The per-run recovery machinery: the anomaly monitor, the last good
/// epoch-boundary snapshot, and the rollback/backoff protocol.
struct RecoveryGuard {
    watchdog: Watchdog,
    recoveries: usize,
    anomalies: Vec<AnomalyReport>,
    snap: Option<MemorySnapshot>,
}

impl RecoveryGuard {
    fn new(watchdog: Watchdog) -> Self {
        Self {
            watchdog,
            recoveries: 0,
            anomalies: Vec::new(),
            snap: None,
        }
    }

    fn enabled(&self) -> bool {
        self.watchdog.config().enabled
    }

    /// Captures the epoch-boundary state recovery will roll back to:
    /// exactly what a v2 checkpoint at this boundary would hold.
    #[allow(clippy::too_many_arguments)]
    fn arm(
        &mut self,
        model: &Mgbr,
        tc: &TrainConfig,
        adam: &Adam,
        rng: &Pcg32,
        epoch: usize,
        total_steps: usize,
        val_history: &[f64],
    ) {
        if !self.enabled() {
            return;
        }
        let (t, m, v) = adam.export_moments();
        let state = TrainState {
            epoch: epoch as u64,
            step: total_steps as u64,
            config_fingerprint: tc.fingerprint(),
            rng: Some(rng.export_state()),
            val_history: val_history.to_vec(),
            adam: Some(AdamState { t, m, v }),
        };
        self.snap = Some(MemorySnapshot::capture(&model.store, state));
    }

    /// Rolls back to the armed snapshot, backs off the learning rate, and
    /// re-seeds the batch stream; fails closed with
    /// [`TrainError::Diverged`] once the recovery budget is spent (or the
    /// watchdog is disabled, or no snapshot was armed).
    fn recover(
        &mut self,
        model: &mut Mgbr,
        adam: &mut Adam,
        rng: &mut Pcg32,
        cur_lr: &mut f32,
        report: AnomalyReport,
    ) -> Result<(), TrainError> {
        let cfg = self.watchdog.config().clone();
        if !cfg.enabled || self.recoveries >= cfg.max_recoveries || self.snap.is_none() {
            return Err(TrainError::Diverged { report });
        }
        self.recoveries += 1;
        let snap = self.snap.as_ref().expect("checked above");
        snap.restore(&mut model.store)?;
        let state = snap.state();
        *cur_lr *= cfg.backoff;
        *adam = Adam::with_lr(*cur_lr);
        if let Some(a) = &state.adam {
            adam.restore_moments(a.t, a.m.clone(), a.v.clone());
        }
        if let Some(r) = state.rng {
            // Restore the boundary stream, then hop to a recovery-indexed
            // stream: the retry shuffles batches in a different order, so
            // the trajectory leaves the faulting step behind while staying
            // fully deterministic for a given recovery count.
            let hop = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.recoveries as u64);
            *rng = Pcg32::new(r.state.wrapping_add(hop), r.inc ^ self.recoveries as u64);
        }
        self.watchdog.reset();
        self.anomalies.push(report);
        Ok(())
    }
}

/// Trains `model` on the split's training partition.
///
/// `full` is the complete preprocessed dataset, used only to judge
/// negativity during sampling (never for gradients).
///
/// When checkpointing/resume is enabled (see [`TrainConfig`]), the
/// returned report covers only the epochs executed by *this* process; the
/// checkpoint's own counters stay cumulative across resumes. A zero-epoch
/// budget (or a resume already past the budget) returns an empty report.
///
/// # Errors
///
/// Returns [`TrainError::ConfigMismatch`] for an empty training
/// partition, inconsistent checkpoint settings, or an incompatible
/// checkpoint on disk; [`TrainError::Checkpoint`] when a checkpoint
/// cannot be written or read (corrupt files fail closed and never
/// partially restore); and [`TrainError::Diverged`] when training
/// diverges and the watchdog's recovery budget is exhausted (or the
/// watchdog is disabled).
pub fn train(
    model: &mut Mgbr,
    full: &Dataset,
    split: &DataSplit,
    tc: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    if split.train.is_empty() {
        return Err(TrainError::ConfigMismatch(
            "empty training partition".into(),
        ));
    }
    if tc.checkpoint_every > 0 && tc.checkpoint_path.is_none() {
        return Err(TrainError::ConfigMismatch(
            "checkpoint_every > 0 requires checkpoint_path".into(),
        ));
    }
    configure_threads(tc.threads);
    let _trace = trace_session(tc)?;
    let mut adam = Adam::with_lr(tc.lr);
    let mut cur_lr = tc.lr;
    let mut rng = Pcg32::seed_from_u64(tc.seed);
    let mut timer = EpochTimer::new();
    let mut epoch_losses = Vec::with_capacity(tc.epochs);
    let mut steps = 0usize;
    let mut start_epoch = 0usize;
    let mut prior_steps = 0usize;
    if let Some(rp) = try_resume(model, tc, &mut adam, &mut rng)? {
        start_epoch = rp.start_epoch;
        prior_steps = rp.steps;
    }
    drop(
        mgbr_obs::event("train.start", "train")
            .arg("epochs", tc.epochs as u64)
            .arg("start_epoch", start_epoch as u64)
            .arg("fingerprint", format!("{:016x}", tc.fingerprint())),
    );
    if start_epoch >= tc.epochs {
        return Ok(TrainReport::empty(model.param_count()));
    }
    let mut fault = tc.numeric_fault.map(NumericFaultArm::new);
    let mut guard = RecoveryGuard::new(Watchdog::new(tc.watchdog.clone().from_env()));
    guard.arm(model, tc, &adam, &rng, start_epoch, prior_steps, &[]);

    let mut data_seed = epoch_data_seed(tc, start_epoch);
    let mut data = sample_epoch(model, full, split, tc, data_seed);
    // One tape (and one buffer pool) for the whole run: every step resets
    // it and recycles storage, so steady-state steps allocate nothing.
    let tape = Tape::new();

    let mut epoch = start_epoch;
    while epoch < tc.epochs {
        let _epoch_span = mgbr_obs::span("epoch", "train").arg("epoch", epoch as u64);
        let want_seed = epoch_data_seed(tc, epoch);
        if want_seed != data_seed {
            data = sample_epoch(model, full, split, tc, want_seed);
            data_seed = want_seed;
        }
        if tc.adam_warm_restarts && epoch > 0 {
            adam = Adam::with_lr(cur_lr);
        }
        timer.start_epoch();
        let outcome = run_epoch(
            model,
            &tape,
            &data,
            tc,
            &mut adam,
            &mut rng,
            &mut guard,
            fault.as_mut(),
            prior_steps + steps,
            epoch,
        );
        match outcome {
            Ok((loss, epoch_steps)) => {
                timer.end_epoch();
                // End-of-epoch finiteness check — the only guard when the
                // watchdog is disabled (step-level checks subsume it
                // otherwise).
                if !guard.enabled() {
                    if let Some((tensor, idx)) = first_non_finite_param(&model.store) {
                        let report = AnomalyReport {
                            kind: AnomalyKind::NonFiniteParam,
                            epoch,
                            step: prior_steps + steps + epoch_steps,
                            loss,
                            tensor: Some(tensor),
                            first_index: Some(idx),
                            recoveries: guard.recoveries,
                        };
                        journal_anomaly(&report);
                        return Err(TrainError::Diverged { report });
                    }
                }
                epoch_losses.push(loss);
                steps += epoch_steps;
                journal_epoch(&tape, epoch, loss, epoch_steps, guard.recoveries);
                maybe_checkpoint(
                    model,
                    tc,
                    &adam,
                    &rng,
                    epoch + 1,
                    prior_steps + steps,
                    &[],
                    false,
                )?;
                epoch += 1;
                guard.arm(model, tc, &adam, &rng, epoch, prior_steps + steps, &[]);
            }
            Err(report) => {
                // Anomaly mid-epoch: roll back to the boundary snapshot
                // and retry this epoch at a reduced learning rate (the
                // epoch's partial loss/steps are discarded with it).
                journal_anomaly(&report);
                guard.recover(model, &mut adam, &mut rng, &mut cur_lr, report)?;
                drop(
                    mgbr_obs::event("watchdog.recover", "train")
                        .arg("recoveries", guard.recoveries as u64)
                        .arg("lr", cur_lr),
                );
            }
        }
    }
    Ok(TrainReport {
        epoch_losses,
        epoch_secs: timer.all().to_vec(),
        param_count: model.param_count(),
        steps,
        recoveries: guard.recoveries,
        anomalies: guard.anomalies,
    })
}

/// Trains with per-epoch validation and patience-based early stopping.
///
/// After every epoch the model is evaluated on the split's *validation*
/// partition (Task A + Task B MRR@10 on 1:9 candidate lists, averaged);
/// training stops once the metric fails to improve by `min_delta` for
/// `patience` consecutive epochs. Returns the report plus the per-epoch
/// validation history.
///
/// On resume, the early-stopping state is reconstructed by replaying the
/// checkpointed validation history, and the returned history covers the
/// full run — replayed entries are tagged [`ValEntry::replayed`] so their
/// provenance survives the resume; the report's losses cover only the
/// epochs this process executed.
///
/// # Errors
///
/// As for [`train`], plus [`TrainError::ConfigMismatch`] when the
/// validation partition is empty.
pub fn train_with_validation(
    model: &mut Mgbr,
    full: &Dataset,
    split: &DataSplit,
    tc: &TrainConfig,
    patience: usize,
    min_delta: f64,
) -> Result<(TrainReport, Vec<ValEntry>), TrainError> {
    if split.train.is_empty() {
        return Err(TrainError::ConfigMismatch(
            "empty training partition".into(),
        ));
    }
    if split.val.is_empty() {
        return Err(TrainError::ConfigMismatch(
            "empty validation partition".into(),
        ));
    }
    if tc.checkpoint_every > 0 && tc.checkpoint_path.is_none() {
        return Err(TrainError::ConfigMismatch(
            "checkpoint_every > 0 requires checkpoint_path".into(),
        ));
    }
    configure_threads(tc.threads);
    let _trace = trace_session(tc)?;
    let mut adam = Adam::with_lr(tc.lr);
    let mut cur_lr = tc.lr;
    let mut rng = Pcg32::seed_from_u64(tc.seed);
    let mut timer = EpochTimer::new();
    let mut epoch_losses = Vec::with_capacity(tc.epochs);
    let mut steps = 0usize;
    let mut history: Vec<ValEntry> = Vec::with_capacity(tc.epochs);
    let mut stopper = mgbr_nn::EarlyStopping::new(patience, min_delta);

    let mut start_epoch = 0usize;
    let mut prior_steps = 0usize;
    let mut already_stopped = false;
    if let Some(rp) = try_resume(model, tc, &mut adam, &mut rng)? {
        start_epoch = rp.start_epoch;
        prior_steps = rp.steps;
        // Replay the checkpointed metrics so patience counting continues
        // exactly where the interrupted run left off. Replayed entries
        // are tagged: this process did not evaluate them.
        for (epoch, &metric) in rp.val_history.iter().enumerate() {
            history.push(ValEntry {
                epoch,
                metric,
                replayed: true,
            });
            drop(
                mgbr_obs::event("val.metric", "train")
                    .arg("epoch", epoch as u64)
                    .arg("metric", metric)
                    .arg("replayed", true),
            );
            if stopper.update(epoch, metric) {
                already_stopped = true;
            }
        }
    }
    drop(
        mgbr_obs::event("train.start", "train")
            .arg("epochs", tc.epochs as u64)
            .arg("start_epoch", start_epoch as u64)
            .arg("fingerprint", format!("{:016x}", tc.fingerprint())),
    );
    if start_epoch >= tc.epochs || already_stopped {
        return Ok((TrainReport::empty(model.param_count()), history));
    }
    let mut fault = tc.numeric_fault.map(NumericFaultArm::new);
    let mut guard = RecoveryGuard::new(Watchdog::new(tc.watchdog.clone().from_env()));
    guard.arm(
        model,
        tc,
        &adam,
        &rng,
        start_epoch,
        prior_steps,
        &raw_metrics(&history),
    );

    // Fixed validation candidate lists across epochs.
    let mut val_sampler = Sampler::new(full, tc.seed ^ 0x5a11d);
    let val_a = val_sampler.task_a_instances(&split.val, 9);
    let val_b = val_sampler.task_b_instances(&split.val, 9);

    let mut data_seed = epoch_data_seed(tc, start_epoch);
    let mut data = sample_epoch(model, full, split, tc, data_seed);
    let tape = Tape::new();
    let mut epoch = start_epoch;
    while epoch < tc.epochs {
        let _epoch_span = mgbr_obs::span("epoch", "train").arg("epoch", epoch as u64);
        let want_seed = epoch_data_seed(tc, epoch);
        if want_seed != data_seed {
            data = sample_epoch(model, full, split, tc, want_seed);
            data_seed = want_seed;
        }
        if tc.adam_warm_restarts && epoch > 0 {
            adam = Adam::with_lr(cur_lr);
        }
        timer.start_epoch();
        let outcome = run_epoch(
            model,
            &tape,
            &data,
            tc,
            &mut adam,
            &mut rng,
            &mut guard,
            fault.as_mut(),
            prior_steps + steps,
            epoch,
        );
        match outcome {
            Ok((loss, epoch_steps)) => {
                timer.end_epoch();
                if !guard.enabled() {
                    if let Some((tensor, idx)) = first_non_finite_param(&model.store) {
                        let report = AnomalyReport {
                            kind: AnomalyKind::NonFiniteParam,
                            epoch,
                            step: prior_steps + steps + epoch_steps,
                            loss,
                            tensor: Some(tensor),
                            first_index: Some(idx),
                            recoveries: guard.recoveries,
                        };
                        journal_anomaly(&report);
                        return Err(TrainError::Diverged { report });
                    }
                }
                epoch_losses.push(loss);
                steps += epoch_steps;
                journal_epoch(&tape, epoch, loss, epoch_steps, guard.recoveries);

                let scorer = model.scorer();
                let ma = mgbr_eval::evaluate_task_a(&scorer, &val_a, 10);
                let mb = mgbr_eval::evaluate_task_b(&scorer, &val_b, 10);
                let metric = 0.5 * (ma.mrr + mb.mrr);
                history.push(ValEntry {
                    epoch,
                    metric,
                    replayed: false,
                });
                drop(
                    mgbr_obs::event("val.metric", "train")
                        .arg("epoch", epoch as u64)
                        .arg("metric", metric)
                        .arg("replayed", false),
                );
                let stop = stopper.update(epoch, metric);
                maybe_checkpoint(
                    model,
                    tc,
                    &adam,
                    &rng,
                    epoch + 1,
                    prior_steps + steps,
                    &raw_metrics(&history),
                    stop,
                )?;
                if stop {
                    break;
                }
                epoch += 1;
                guard.arm(
                    model,
                    tc,
                    &adam,
                    &rng,
                    epoch,
                    prior_steps + steps,
                    &raw_metrics(&history),
                );
            }
            Err(report) => {
                journal_anomaly(&report);
                guard.recover(model, &mut adam, &mut rng, &mut cur_lr, report)?;
                drop(
                    mgbr_obs::event("watchdog.recover", "train")
                        .arg("recoveries", guard.recoveries as u64)
                        .arg("lr", cur_lr),
                );
            }
        }
    }
    Ok((
        TrainReport {
            epoch_losses,
            epoch_secs: timer.all().to_vec(),
            param_count: model.param_count(),
            steps,
            recoveries: guard.recoveries,
            anomalies: guard.anomalies,
        },
        history,
    ))
}

/// Runs one epoch of optimization. `step_base` is the absolute
/// (cumulative) step count completed before this epoch; on an anomaly the
/// epoch aborts with the report and the caller decides recovery.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    model: &mut Mgbr,
    tape: &Tape,
    data: &EpochData,
    tc: &TrainConfig,
    adam: &mut Adam,
    rng: &mut Pcg32,
    guard: &mut RecoveryGuard,
    mut fault: Option<&mut NumericFaultArm>,
    step_base: usize,
    epoch: usize,
) -> Result<(f32, usize), AnomalyReport> {
    let cfg = model.cfg.clone();
    let use_aux = cfg.variant.has_aux_losses() && !data.aux.is_empty();

    let a_batches: Vec<Vec<usize>> =
        BatchIter::new(data.task_a.len(), tc.batch_size, rng).collect();
    let b_batches: Vec<Vec<usize>> =
        BatchIter::new(data.task_b.len(), tc.batch_size, rng).collect();
    let aux_batches: Vec<Vec<usize>> = if use_aux {
        BatchIter::new(data.aux.len(), tc.batch_size, rng).collect()
    } else {
        Vec::new()
    };
    let n_steps = a_batches.len().max(b_batches.len());
    debug_assert!(n_steps > 0, "no batches in epoch");
    let watchdog_on = guard.enabled();
    let recoveries = guard.recoveries;
    let report = |kind, step, loss, tensor, first_index| AnomalyReport {
        kind,
        epoch,
        step,
        loss,
        tensor,
        first_index,
        recoveries,
    };

    // Read the cadence knob once per epoch; zero (or tracing off) means
    // metrics snapshots only at epoch boundaries.
    let every = if mgbr_obs::enabled() {
        metrics_every()
    } else {
        0
    };
    let mut loss_sum = 0.0f64;
    for step in 0..n_steps {
        let abs_step = step_base + step;
        let _step_span = mgbr_obs::span("step", "train").arg("step", abs_step as u64);
        let batch_a: Vec<&TaskAInstance> = a_batches[step % a_batches.len()]
            .iter()
            .map(|&j| &data.task_a[j])
            .collect();
        let batch_b: Vec<&TaskBInstance> = if b_batches.is_empty() {
            Vec::new()
        } else {
            b_batches[step % b_batches.len()]
                .iter()
                .map(|&j| &data.task_b[j])
                .collect()
        };
        let batch_aux: Vec<&AuxSample> = if use_aux {
            aux_batches[step % aux_batches.len()]
                .iter()
                .map(|&j| &data.aux[j])
                .collect()
        } else {
            Vec::new()
        };

        let fwd = mgbr_obs::span("loss.forward", "train")
            .arg("batch_a", batch_a.len() as u64)
            .arg("batch_b", batch_b.len() as u64);
        let ctx = StepCtx::with_tape(tape, &model.store);
        let emb = model.embeddings(&ctx);
        let mean_p = emb.participants.mean_rows();

        // L = L_A + β L_B + β_A L'_A + β_B L'_B (Eq. 25).
        let mut total = task_a_loss(model, &ctx, &emb, &mean_p, &batch_a);
        if !batch_b.is_empty() {
            total = total.add(&task_b_loss(model, &ctx, &emb, &batch_b).scale(cfg.beta));
        }
        if !batch_aux.is_empty() {
            total = total.add(&aux_a_loss(model, &ctx, &emb, &batch_aux).scale(cfg.beta_a));
            total = total.add(&aux_b_loss(model, &ctx, &emb, &batch_aux).scale(cfg.beta_b));
        }
        let mut loss_val = total.value().scalar();
        drop(fwd);
        if let Some(arm) = fault.as_deref_mut() {
            loss_val = arm.tamper_loss(abs_step, loss_val);
        }
        if let Some(kind) = guard.watchdog.check_loss(loss_val) {
            return Err(report(kind, abs_step, loss_val, None, None));
        }
        loss_sum += loss_val as f64;

        let mut grads = ctx.backward(&total);
        if let Some(clip) = tc.grad_clip {
            grads.clip_global_norm(clip);
        }
        if let Some(arm) = fault.as_deref_mut() {
            arm.tamper_grads(abs_step, &mut grads);
        }
        if watchdog_on {
            if let Some((tensor, idx)) = first_non_finite_grad(&model.store, &grads) {
                return Err(report(
                    AnomalyKind::NonFiniteGradient,
                    abs_step,
                    loss_val,
                    Some(tensor),
                    Some(idx),
                ));
            }
        }
        drop(ctx);
        {
            let _opt = mgbr_obs::span("optimizer.step", "train").arg("step", abs_step as u64);
            adam.step(&mut model.store, &grads);
        }
        if let Some(arm) = fault.as_deref_mut() {
            arm.tamper_params(abs_step, &mut model.store);
        }
        if watchdog_on {
            if let Some((tensor, idx)) = first_non_finite_param(&model.store) {
                return Err(report(
                    AnomalyKind::NonFiniteParam,
                    abs_step,
                    loss_val,
                    Some(tensor),
                    Some(idx),
                ));
            }
        }
        if every > 0 && (step + 1) % every == 0 {
            mgbr_obs::emit_metrics("step");
        }
    }
    Ok(((loss_sum / n_steps as f64) as f32, n_steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::WatchdogConfig;
    use crate::{MgbrConfig, MgbrVariant};
    use mgbr_data::{split_dataset, synthetic, SyntheticConfig};
    use mgbr_eval::{evaluate_task_a, evaluate_task_b};
    use mgbr_nn::NumericFault;

    fn fixture() -> (Dataset, DataSplit) {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
        (ds, split)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 4,
            ..TrainConfig::tiny()
        };
        let report = train(&mut model, &ds, &split, &tc).unwrap();
        assert_eq!(report.epoch_losses.len(), 4);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first,
            "loss should decrease: {:?}",
            report.epoch_losses
        );
        assert!(report.mean_epoch_secs() > 0.0);
        assert_eq!(report.param_count, model.param_count());
        assert_eq!(report.recoveries, 0);
        assert!(report.anomalies.is_empty());
    }

    /// Regression: a zero-epoch budget must yield an empty report, not
    /// panic on `epoch_losses.last()` downstream.
    #[test]
    fn zero_epoch_run_returns_empty_report() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 0,
            ..TrainConfig::tiny()
        };
        let report = train(&mut model, &ds, &split, &tc).unwrap();
        assert!(report.epoch_losses.is_empty());
        assert!(report.epoch_secs.is_empty());
        assert_eq!(report.steps, 0);
        assert_eq!(report.param_count, model.param_count());
        assert_eq!(report.mean_epoch_secs(), 0.0);
        assert_eq!(report.steps_per_sec(), 0.0);

        let (vreport, history) =
            train_with_validation(&mut model, &ds, &split, &tc, 3, 0.0).unwrap();
        assert!(vreport.epoch_losses.is_empty());
        assert!(history.is_empty());
    }

    #[test]
    fn empty_partition_is_a_config_mismatch() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let empty = DataSplit {
            train: Vec::new(),
            ..split
        };
        let err = train(&mut model, &ds, &empty, &TrainConfig::tiny()).unwrap_err();
        assert!(matches!(err, TrainError::ConfigMismatch(_)), "{err}");
        assert!(err.to_string().contains("empty training partition"));
    }

    #[test]
    fn checkpoint_cadence_without_path_is_a_config_mismatch() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            checkpoint_every: 1,
            ..TrainConfig::tiny()
        };
        let err = train(&mut model, &ds, &split, &tc).unwrap_err();
        assert!(matches!(err, TrainError::ConfigMismatch(_)), "{err}");
    }

    #[test]
    fn training_beats_random_ranking() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 5,
            lr: 8e-3,
            ..TrainConfig::tiny()
        };
        train(&mut model, &ds, &split, &tc).unwrap();

        let mut sampler = Sampler::new(&ds, 77);
        let test_a = sampler.task_a_instances(&split.test, 9);
        let test_b = sampler.task_b_instances(&split.test, 9);
        let scorer = model.scorer();
        let ma = evaluate_task_a(&scorer, &test_a, 10);
        let mb = evaluate_task_b(&scorer, &test_b, 10);
        // Random MRR@10 on a 1:9 list ≈ 0.293; a trained model must beat
        // it on both tasks (tiny data, so the bar is modest).
        assert!(ma.mrr > 0.32, "task A mrr {}", ma.mrr);
        assert!(mb.mrr > 0.32, "task B mrr {}", mb.mrr);
    }

    #[test]
    fn no_aux_variant_trains() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny().with_variant(MgbrVariant::NoAux), &ds);
        let report = train(&mut model, &ds, &split, &TrainConfig::tiny()).unwrap();
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn training_is_deterministic() {
        let (ds, split) = fixture();
        let tc = TrainConfig {
            epochs: 1,
            ..TrainConfig::tiny()
        };
        let mut m1 = Mgbr::new(MgbrConfig::tiny(), &ds);
        let mut m2 = Mgbr::new(MgbrConfig::tiny(), &ds);
        let r1 = train(&mut m1, &ds, &split, &tc).unwrap();
        let r2 = train(&mut m2, &ds, &split, &tc).unwrap();
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
    }

    /// The execution engine's headline guarantee: parallel kernels
    /// partition output rows deterministically, so an entire training run
    /// — losses AND final parameters — is bitwise identical at any
    /// thread count. (Env override: skip when MGBR_THREADS pins the knob,
    /// since `threads` in the config would then be ignored by design.)
    #[test]
    fn training_is_bitwise_identical_across_thread_counts() {
        if std::env::var("MGBR_THREADS").is_ok() {
            return;
        }
        let (ds, split) = fixture();
        let run = |threads: usize| {
            let tc = TrainConfig {
                epochs: 2,
                threads,
                ..TrainConfig::tiny()
            };
            let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
            let report = train(&mut model, &ds, &split, &tc).unwrap();
            let params: Vec<f32> = model
                .store
                .iter()
                .flat_map(|(_, _, t)| t.as_slice().to_vec())
                .collect();
            (report.epoch_losses, params)
        };
        let (losses_1, params_1) = run(1);
        for threads in [2usize, 4] {
            let (losses_t, params_t) = run(threads);
            assert_eq!(losses_1, losses_t, "losses diverged at {threads} threads");
            assert_eq!(
                params_1, params_t,
                "parameters diverged at {threads} threads"
            );
        }
        mgbr_tensor::set_threads(1);
    }

    #[test]
    fn watchdog_recovers_from_poisoned_parameter() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 2,
            numeric_fault: Some(NumericFault::poison_param(1, 0, 0, f32::NAN)),
            ..TrainConfig::tiny()
        };
        let report = train(&mut model, &ds, &split, &tc).unwrap();
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.anomalies.len(), 1);
        assert_eq!(report.anomalies[0].kind, AnomalyKind::NonFiniteParam);
        assert_eq!(report.anomalies[0].step, 1);
        assert!(report.anomalies[0].tensor.is_some());
        assert_eq!(report.anomalies[0].first_index, Some(0));
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(model.store.all_finite());
    }

    #[test]
    fn persistent_fault_exhausts_recoveries_into_diverged() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 2,
            watchdog: WatchdogConfig {
                max_recoveries: 2,
                ..WatchdogConfig::default()
            },
            numeric_fault: Some(NumericFault::poison_param(0, 0, 3, f32::INFINITY).persistent()),
            ..TrainConfig::tiny()
        };
        let err = train(&mut model, &ds, &split, &tc).unwrap_err();
        match err {
            TrainError::Diverged { report } => {
                assert_eq!(report.kind, AnomalyKind::NonFiniteParam);
                assert_eq!(report.recoveries, 2, "budget spent before failing closed");
                assert_eq!(report.first_index, Some(3));
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn disabled_watchdog_fails_closed_without_recovery() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 1,
            watchdog: WatchdogConfig::disabled(),
            numeric_fault: Some(NumericFault::poison_param(1, 0, 0, f32::NAN)),
            ..TrainConfig::tiny()
        };
        let err = train(&mut model, &ds, &split, &tc).unwrap_err();
        assert!(matches!(err, TrainError::Diverged { .. }), "{err}");
    }

    #[test]
    fn spike_fault_triggers_loss_spike_recovery() {
        let (ds, split) = fixture();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 2,
            watchdog: WatchdogConfig {
                window: 4,
                spike_factor: 10.0,
                ..WatchdogConfig::default()
            },
            numeric_fault: Some(NumericFault::spike_loss(6, 1e6)),
            ..TrainConfig::tiny()
        };
        let report = train(&mut model, &ds, &split, &tc).unwrap();
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.anomalies[0].kind, AnomalyKind::LossSpike);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn fault_free_run_identical_with_watchdog_on_or_off() {
        let (ds, split) = fixture();
        let run = |wd: WatchdogConfig| {
            let tc = TrainConfig {
                epochs: 2,
                watchdog: wd,
                ..TrainConfig::tiny()
            };
            let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
            let report = train(&mut model, &ds, &split, &tc).unwrap();
            let params: Vec<f32> = model
                .store
                .iter()
                .flat_map(|(_, _, t)| t.as_slice().to_vec())
                .collect();
            (report.epoch_losses, params)
        };
        let (l_on, p_on) = run(WatchdogConfig::default());
        let (l_off, p_off) = run(WatchdogConfig::disabled());
        assert_eq!(l_on, l_off, "watchdog must not perturb losses");
        assert_eq!(p_on, p_off, "watchdog must not perturb parameters");
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use crate::MgbrConfig;
    use mgbr_data::{split_dataset, synthetic, SyntheticConfig};
    use mgbr_nn::NumericFault;

    #[test]
    fn validation_training_records_history_and_can_stop_early() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 6,
            ..TrainConfig::tiny()
        };
        // Absurd patience-0-equivalent: min_delta so large nothing counts
        // as improvement after the first epoch.
        let (report, history) =
            train_with_validation(&mut model, &ds, &split, &tc, 2, 10.0).unwrap();
        assert_eq!(report.epoch_losses.len(), history.len());
        assert!(
            history.len() <= 3,
            "patience 2 with impossible min_delta must stop by epoch 3, ran {}",
            history.len()
        );
        assert!(history.iter().all(|e| (0.0..=1.0).contains(&e.metric)));
        assert!(
            history.iter().all(|e| !e.replayed),
            "fresh run must not tag entries as replayed"
        );
    }

    #[test]
    fn validation_training_runs_to_completion_with_loose_patience() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 3,
            ..TrainConfig::tiny()
        };
        let (report, history) =
            train_with_validation(&mut model, &ds, &split, &tc, 50, 0.0).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(report.epoch_secs.len(), 3);
    }

    #[test]
    fn validation_training_recovers_from_injected_fault() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let tc = TrainConfig {
            epochs: 3,
            numeric_fault: Some(NumericFault::poison_gradient(2, 0, 0, f32::NAN)),
            ..TrainConfig::tiny()
        };
        let (report, history) =
            train_with_validation(&mut model, &ds, &split, &tc, 50, 0.0).unwrap();
        assert_eq!(report.recoveries, 1);
        assert_eq!(
            report.anomalies[0].kind,
            crate::watchdog::AnomalyKind::NonFiniteGradient
        );
        assert_eq!(history.len(), report.epoch_losses.len());
        assert!(model.store.all_finite());
    }
}
