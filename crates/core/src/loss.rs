//! Loss assembly for one training step (§II-F, §II-G).
//!
//! Index plumbing lives here: each loss builds flat row batches of
//! `(u, i, p)` triples, scores them through the model, and pairs/reshapes
//! the flat score column into the ranking structure its objective needs.

use std::rc::Rc;

use mgbr_autograd::Var;
use mgbr_data::{TaskAInstance, TaskBInstance};
use mgbr_nn::{bpr_loss, listwise_first_is_positive_loss, StepCtx};

use crate::model::{gather, Mgbr};
use crate::multiview::ObjectEmbeddings;

/// Auxiliary-loss sample: one observed triple plus its corruption lists
/// `T_t^I` and `T_t^P` (§II-G).
#[derive(Debug, Clone)]
pub struct AuxSample {
    /// Initiator `u`.
    pub user: u32,
    /// Observed item `i`.
    pub item: u32,
    /// Observed participant `p`.
    pub participant: u32,
    /// Corrupted items `i' ∈ T_t^I` (`|T|` of them).
    pub corrupt_items: Vec<u32>,
    /// Corrupted participants `p' ∈ T_t^P` (`|T|` of them).
    pub corrupt_participants: Vec<u32>,
}

/// Tiles index `0` (for broadcasting a 1-row var across a batch).
fn zeros(n: usize) -> Vec<usize> {
    vec![0; n]
}

/// Task A BPR loss `L_A` (Eq. 19) over a batch of instances: one MTL pass
/// over positives and negatives, then pairwise BPR.
///
/// `e_p` is the mean participant-role embedding (Eq. 16's averaging).
pub fn task_a_loss(
    model: &Mgbr,
    ctx: &StepCtx<'_>,
    emb: &ObjectEmbeddings,
    mean_p: &Var,
    batch: &[&TaskAInstance],
) -> Var {
    let n = batch.len();
    let k = batch[0].neg_items.len();
    let mut users = Vec::with_capacity(n * (1 + k));
    let mut items = Vec::with_capacity(n * (1 + k));
    for inst in batch {
        users.push(inst.user as usize);
        items.push(inst.pos_item as usize);
    }
    for inst in batch {
        for &neg in &inst.neg_items {
            users.push(inst.user as usize);
            items.push(neg as usize);
        }
    }
    let rows = users.len();
    let e_u = gather(&emb.users, users);
    let e_i = gather(&emb.items, items);
    let e_p = mean_p.gather_rows(Rc::new(zeros(rows)));
    let scores = model.logit_a(ctx, &e_u, &e_i, &e_p);

    // Pair positive j with each of its k negatives.
    let mut pos_idx = Vec::with_capacity(n * k);
    for j in 0..n {
        pos_idx.extend(std::iter::repeat_n(j, k));
    }
    let neg_idx: Vec<usize> = (n..n + n * k).collect();
    bpr_loss(
        &scores.gather_rows(Rc::new(pos_idx)),
        &scores.gather_rows(Rc::new(neg_idx)),
    )
}

/// Task B BPR loss `L_B` (Eq. 19) over a batch of instances.
pub fn task_b_loss(
    model: &Mgbr,
    ctx: &StepCtx<'_>,
    emb: &ObjectEmbeddings,
    batch: &[&TaskBInstance],
) -> Var {
    let n = batch.len();
    let k = batch[0].neg_participants.len();
    let mut users = Vec::with_capacity(n * (1 + k));
    let mut items = Vec::with_capacity(n * (1 + k));
    let mut parts = Vec::with_capacity(n * (1 + k));
    for inst in batch {
        users.push(inst.user as usize);
        items.push(inst.item as usize);
        parts.push(inst.pos_participant as usize);
    }
    for inst in batch {
        for &neg in &inst.neg_participants {
            users.push(inst.user as usize);
            items.push(inst.item as usize);
            parts.push(neg as usize);
        }
    }
    let e_u = gather(&emb.users, users);
    let e_i = gather(&emb.items, items);
    let e_p = gather(&emb.participants, parts);
    let scores = model.logit_b(ctx, &e_u, &e_i, &e_p);

    let mut pos_idx = Vec::with_capacity(n * k);
    for j in 0..n {
        pos_idx.extend(std::iter::repeat_n(j, k));
    }
    let neg_idx: Vec<usize> = (n..n + n * k).collect();
    bpr_loss(
        &scores.gather_rows(Rc::new(pos_idx)),
        &scores.gather_rows(Rc::new(neg_idx)),
    )
}

/// Task A's auxiliary ListNet loss `L'_A` (Eq. 21): for each observed
/// triple, the candidate list `{t} ∪ T_t^I ∪ T_t^P` is scored through the
/// *Task A* head with the concrete participant embedding, and the model
/// is trained to put all probability mass on the true triple.
pub fn aux_a_loss(
    model: &Mgbr,
    ctx: &StepCtx<'_>,
    emb: &ObjectEmbeddings,
    batch: &[&AuxSample],
) -> Var {
    let n = batch.len();
    let t = batch[0].corrupt_items.len();
    debug_assert_eq!(t, batch[0].corrupt_participants.len());
    let list_len = 1 + 2 * t;
    let mut users = Vec::with_capacity(n * list_len);
    let mut items = Vec::with_capacity(n * list_len);
    let mut parts = Vec::with_capacity(n * list_len);
    for s in batch {
        // True triple first — the listwise loss treats column 0 as the
        // positive.
        users.push(s.user as usize);
        items.push(s.item as usize);
        parts.push(s.participant as usize);
        for &i_neg in &s.corrupt_items {
            users.push(s.user as usize);
            items.push(i_neg as usize);
            parts.push(s.participant as usize);
        }
        for &p_neg in &s.corrupt_participants {
            users.push(s.user as usize);
            items.push(s.item as usize);
            parts.push(p_neg as usize);
        }
    }
    let e_u = gather(&emb.users, users);
    let e_i = gather(&emb.items, items);
    let e_p = gather(&emb.participants, parts);
    let scores = model.logit_a(ctx, &e_u, &e_i, &e_p);
    listwise_first_is_positive_loss(&scores.reshape(n, list_len))
}

/// Task B's auxiliary BPR loss `L'_B` (Eq. 24): `s(p|u,i)` must beat
/// `s(p|u,i')` for every corrupted item `i' ∈ T_t^I`.
pub fn aux_b_loss(
    model: &Mgbr,
    ctx: &StepCtx<'_>,
    emb: &ObjectEmbeddings,
    batch: &[&AuxSample],
) -> Var {
    let n = batch.len();
    let t = batch[0].corrupt_items.len();
    let stride = 1 + t;
    let mut users = Vec::with_capacity(n * stride);
    let mut items = Vec::with_capacity(n * stride);
    let mut parts = Vec::with_capacity(n * stride);
    for s in batch {
        users.push(s.user as usize);
        items.push(s.item as usize);
        parts.push(s.participant as usize);
        for &i_neg in &s.corrupt_items {
            users.push(s.user as usize);
            items.push(i_neg as usize);
            parts.push(s.participant as usize);
        }
    }
    let e_u = gather(&emb.users, users);
    let e_i = gather(&emb.items, items);
    let e_p = gather(&emb.participants, parts);
    let scores = model.logit_b(ctx, &e_u, &e_i, &e_p);

    let mut pos_idx = Vec::with_capacity(n * t);
    let mut neg_idx = Vec::with_capacity(n * t);
    for j in 0..n {
        for c in 0..t {
            pos_idx.push(j * stride);
            neg_idx.push(j * stride + 1 + c);
        }
    }
    bpr_loss(
        &scores.gather_rows(Rc::new(pos_idx)),
        &scores.gather_rows(Rc::new(neg_idx)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MgbrConfig, MgbrVariant};
    use mgbr_data::{synthetic, Sampler, SyntheticConfig};

    fn fixture() -> (Mgbr, mgbr_data::Dataset, Sampler) {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let sampler = Sampler::new(&ds, 3);
        (model, ds, sampler)
    }

    fn aux_samples(ds: &mgbr_data::Dataset, sampler: &mut Sampler, t: usize) -> Vec<AuxSample> {
        ds.groups
            .iter()
            .filter(|g| !g.participants.is_empty())
            .take(6)
            .map(|g| {
                let (ci, cp) = sampler.aux_corruptions(g.initiator, g.item, t);
                AuxSample {
                    user: g.initiator,
                    item: g.item,
                    participant: g.participants[0],
                    corrupt_items: ci,
                    corrupt_participants: cp,
                }
            })
            .collect()
    }

    #[test]
    fn all_losses_are_finite_scalars() {
        let (model, ds, mut sampler) = fixture();
        let a_insts = sampler.task_a_instances(&ds.groups[..8], 4);
        let b_insts = sampler.task_b_instances(&ds.groups[..8], 4);
        let aux = aux_samples(&ds, &mut sampler, 3);

        let ctx = StepCtx::new(&model.store);
        let emb = model.embeddings(&ctx);
        let mean_p = emb.participants.mean_rows();

        let a_refs: Vec<&TaskAInstance> = a_insts.iter().collect();
        let b_refs: Vec<&TaskBInstance> = b_insts.iter().collect();
        let aux_refs: Vec<&AuxSample> = aux.iter().collect();

        let la = task_a_loss(&model, &ctx, &emb, &mean_p, &a_refs);
        let lb = task_b_loss(&model, &ctx, &emb, &b_refs);
        let laa = aux_a_loss(&model, &ctx, &emb, &aux_refs);
        let lab = aux_b_loss(&model, &ctx, &emb, &aux_refs);

        for (name, l) in [("L_A", &la), ("L_B", &lb), ("L'_A", &laa), ("L'_B", &lab)] {
            let v = l.value().scalar();
            assert!(v.is_finite() && v > 0.0, "{name} = {v}");
        }

        // A combined backward touches parameters from every sub-module.
        let total = la.add(&lb).add(&laa.scale(0.3)).add(&lab.scale(0.3));
        let grads = ctx.backward(&total);
        assert!(grads.all_finite());
        assert!(
            grads.touched() > model.store.len() / 2,
            "most parameters should train"
        );
    }

    #[test]
    fn aux_a_listnet_baseline_value() {
        // On an untrained model, scores are near-uniform, so L'_A starts
        // near ln(list_len).
        let (model, ds, mut sampler) = fixture();
        let aux = aux_samples(&ds, &mut sampler, 3);
        let ctx = StepCtx::new(&model.store);
        let emb = model.embeddings(&ctx);
        let refs: Vec<&AuxSample> = aux.iter().collect();
        let l = aux_a_loss(&model, &ctx, &emb, &refs).value().scalar();
        let uniform = (1.0f32 + 2.0 * 3.0).ln();
        assert!(
            (l - uniform).abs() < 0.5,
            "L'_A {l} should start near ln(7)={uniform}"
        );
    }

    #[test]
    fn losses_work_for_no_shared_variant() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let model = Mgbr::new(MgbrConfig::tiny().with_variant(MgbrVariant::NoShared), &ds);
        let mut sampler = Sampler::new(&ds, 4);
        let a = sampler.task_a_instances(&ds.groups[..4], 3);
        let ctx = StepCtx::new(&model.store);
        let emb = model.embeddings(&ctx);
        let mean_p = emb.participants.mean_rows();
        let refs: Vec<&TaskAInstance> = a.iter().collect();
        let l = task_a_loss(&model, &ctx, &emb, &mean_p, &refs)
            .value()
            .scalar();
        assert!(l.is_finite());
    }
}
