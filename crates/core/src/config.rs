//! MGBR hyper-parameters (the paper's Table II) and training settings.

use crate::watchdog::WatchdogConfig;
use mgbr_nn::NumericFault;

/// Which variant of MGBR to build — the ablations of §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgbrVariant {
    /// The full model.
    Full,
    /// MGBR-M: shared expert network S and gate S removed (two-tower).
    NoShared,
    /// MGBR-R: auxiliary losses `L'_A` and `L'_B` removed.
    NoAux,
    /// MGBR-M-R: both the shared sub-module and the auxiliary losses
    /// removed.
    NoSharedNoAux,
    /// MGBR-G: adjusted gated units removed (`α_A = α_B = 0`).
    GenericGates,
    /// MGBR-D: the three views replaced by one heterogeneous information
    /// network (HIN) propagated by a single GCN.
    Hin,
}

impl MgbrVariant {
    /// Whether this variant keeps the shared (S) experts and gate.
    pub fn has_shared(self) -> bool {
        !matches!(self, MgbrVariant::NoShared | MgbrVariant::NoSharedNoAux)
    }

    /// Whether this variant trains with the auxiliary losses.
    pub fn has_aux_losses(self) -> bool {
        !matches!(self, MgbrVariant::NoAux | MgbrVariant::NoSharedNoAux)
    }

    /// Whether this variant keeps the adjusted gated units.
    pub fn has_adjusted_gates(self) -> bool {
        !matches!(self, MgbrVariant::GenericGates)
    }

    /// Whether this variant uses the single-HIN embedding module.
    pub fn uses_hin(self) -> bool {
        matches!(self, MgbrVariant::Hin)
    }

    /// The paper's name for this variant.
    pub fn label(self) -> &'static str {
        match self {
            MgbrVariant::Full => "MGBR",
            MgbrVariant::NoShared => "MGBR-M",
            MgbrVariant::NoAux => "MGBR-R",
            MgbrVariant::NoSharedNoAux => "MGBR-M-R",
            MgbrVariant::GenericGates => "MGBR-G",
            MgbrVariant::Hin => "MGBR-D",
        }
    }

    /// All variants, in the paper's Table IV order plus the full model.
    pub fn all() -> [MgbrVariant; 6] {
        [
            MgbrVariant::NoSharedNoAux,
            MgbrVariant::NoShared,
            MgbrVariant::GenericGates,
            MgbrVariant::NoAux,
            MgbrVariant::Hin,
            MgbrVariant::Full,
        ]
    }
}

/// MGBR model hyper-parameters (Table II).
#[derive(Debug, Clone)]
pub struct MgbrConfig {
    /// Per-view GCN embedding dimension `d`; object embeddings are `2d`.
    pub d: usize,
    /// Number of GCN layers `H`.
    pub gcn_layers: usize,
    /// Number of expert networks per sub-module `K`.
    pub n_experts: usize,
    /// Number of expert/gate layers `L` in the MTL module.
    pub mtl_layers: usize,
    /// Control coefficient `α_A` of gate A's adjusted unit (Eq. 12).
    pub alpha_a: f32,
    /// Control coefficient `α_B` of gate B's adjusted unit (Eq. 13).
    pub alpha_b: f32,
    /// Weight `β` of `L_B` in the overall loss (Eq. 25).
    pub beta: f32,
    /// Weight `β_A` of the auxiliary loss `L'_A`.
    pub beta_a: f32,
    /// Weight `β_B` of the auxiliary loss `L'_B`.
    pub beta_b: f32,
    /// Negative-sampling size `|T|` in the auxiliary losses.
    pub t_size: usize,
    /// Hidden widths of the per-task prediction MLPs (input `d` and
    /// output `1` are implied).
    pub mlp_hidden: Vec<usize>,
    /// Softmax-normalize gate attention weights (MMoE-style). The paper's
    /// Eq. 10/13/14 are written without normalization, which is the
    /// default; the ablation bench covers both.
    pub gate_softmax: bool,
    /// Feed the first MTL layer the single `6d` vector `g^0` (the paper's
    /// stated `W¹ ∈ R^{6d×d}` shape) instead of literally concatenating
    /// the identical gate outputs per Eq. 7-9. See `DESIGN.md` §2.
    pub first_layer_dedup: bool,
    /// Include participant-participant edges in the social view `G_UP`
    /// (the paper's footnote 1 reports this slightly *hurts*; default
    /// follows the paper and omits them).
    pub up_include_pp_edges: bool,
    /// Which ablation variant to build.
    pub variant: MgbrVariant,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl MgbrConfig {
    /// Exactly the paper's Table II settings (`d=128, H=2, K=6, L=2,
    /// |T|=99, α=0.1, β=1, β_A=β_B=0.3`).
    pub fn paper() -> Self {
        Self {
            d: 128,
            gcn_layers: 2,
            n_experts: 6,
            mtl_layers: 2,
            alpha_a: 0.1,
            alpha_b: 0.1,
            beta: 1.0,
            beta_a: 0.3,
            beta_b: 0.3,
            t_size: 99,
            mlp_hidden: vec![64],
            gate_softmax: false,
            first_layer_dedup: true,
            up_include_pp_edges: false,
            variant: MgbrVariant::Full,
            seed: 42,
        }
    }

    /// The reduced reproduction scale used by the experiment harness
    /// (same structure, smaller `d` and `|T|`; see `DESIGN.md` §6).
    pub fn repro_scale() -> Self {
        Self {
            d: 16,
            t_size: 8,
            mlp_hidden: vec![16],
            ..Self::paper()
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            d: 4,
            n_experts: 2,
            t_size: 3,
            mlp_hidden: vec![4],
            ..Self::paper()
        }
    }

    /// Derives the same config with a different variant.
    pub fn with_variant(mut self, variant: MgbrVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Object-embedding width `2d` (Eq. 4-6).
    pub fn obj_dim(&self) -> usize {
        2 * self.d
    }

    /// Width of `g⁰ = e_u ‖ e_i ‖ e_p` (Eq. 15).
    pub fn g0_dim(&self) -> usize {
        3 * self.obj_dim()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate settings.
    pub fn validate(&self) {
        assert!(self.d >= 1, "embedding dim must be positive");
        assert!(self.gcn_layers >= 1, "need at least one GCN layer");
        assert!(self.n_experts >= 1, "need at least one expert");
        assert!(self.mtl_layers >= 1, "need at least one MTL layer");
        assert!(self.t_size >= 1, "auxiliary sampling size must be positive");
        assert!(
            (0.0..=1.0).contains(&self.alpha_a) && (0.0..=1.0).contains(&self.alpha_b),
            "α must be in [0,1]"
        );
    }
}

/// Training-loop settings (§II-F, §III-C).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Adam learning rate `ρ`.
    pub lr: f32,
    /// Minibatch size `B` (over positive instances).
    pub batch_size: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Training negatives per positive (the paper's 1:9).
    pub n_neg: usize,
    /// Global-norm gradient clip (`None` disables).
    pub grad_clip: Option<f32>,
    /// Sampling/shuffling seed.
    pub seed: u64,
    /// Resample negatives every epoch (the paper's stochastic protocol).
    pub resample_per_epoch: bool,
    /// Reset Adam's moment estimates at each epoch boundary (warm
    /// restarts). Empirically this breaks MGBR's early optimization
    /// plateau several epochs sooner at reproduction scale; disable to
    /// match classic single-run Adam.
    pub adam_warm_restarts: bool,
    /// Worker threads for parallel kernels (0 = auto-detect). The
    /// `MGBR_THREADS` environment variable overrides this. Results are
    /// bitwise identical at any setting — the engine's kernels partition
    /// output rows deterministically.
    pub threads: usize,
    /// Write a crash-safe checkpoint every this many epochs (0 disables
    /// checkpointing). The final epoch is always checkpointed when
    /// enabled, so a completed run leaves a resumable artifact.
    pub checkpoint_every: usize,
    /// Where to write checkpoints (atomic temp-file + fsync + rename).
    /// Required when `checkpoint_every > 0` or `resume` is set.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Resume from `checkpoint_path` if the file exists: restores
    /// parameters, Adam moments, and RNG state so the continued run is
    /// bitwise identical to one that was never interrupted.
    pub resume: bool,
    /// Divergence-watchdog settings (anomaly detection + rollback/backoff
    /// recovery). Environment overrides (`MGBR_WATCHDOG*`) are applied at
    /// the start of training. Excluded from the fingerprint: monitoring
    /// never changes the fault-free trajectory.
    pub watchdog: WatchdogConfig,
    /// Test-only compute-fault injection (poison a parameter/gradient
    /// element or spike the loss at a chosen step). `None` in production.
    /// Excluded from the fingerprint for the same reason as `watchdog`.
    pub numeric_fault: Option<NumericFault>,
    /// Record a flight-recorder trace to this JSONL path for the run
    /// (`MGBR_TRACE_FORMAT` also writes `<path>.chrome.json` for
    /// `chrome://tracing`). `None` defers to the `MGBR_TRACE` environment
    /// variable; unset both ways, tracing costs one atomic load per hook.
    /// Excluded from the fingerprint: recording is read-only and never
    /// changes the trajectory (traced runs are bitwise identical).
    pub trace_path: Option<std::path::PathBuf>,
}

impl TrainConfig {
    /// The paper's settings: `ρ = 2e-4`, batch 64, 1:9 negatives.
    pub fn paper() -> Self {
        Self {
            lr: 2e-4,
            batch_size: 64,
            epochs: 30,
            n_neg: 9,
            grad_clip: Some(5.0),
            seed: 7,
            resample_per_epoch: true,
            adam_warm_restarts: true,
            threads: 0,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume: false,
            watchdog: WatchdogConfig::default(),
            numeric_fault: None,
            trace_path: None,
        }
    }

    /// Enables checkpointing every `every` epochs into `path`, resuming
    /// from it when the file already exists.
    pub fn with_checkpointing(mut self, path: impl Into<std::path::PathBuf>, every: usize) -> Self {
        self.checkpoint_path = Some(path.into());
        self.checkpoint_every = every.max(1);
        self.resume = true;
        self
    }

    /// Fingerprint of every field that shapes the optimization trajectory.
    ///
    /// A checkpoint written under one fingerprint refuses to resume under
    /// another. Deliberately excluded: `threads` (results are bitwise
    /// identical at any thread count, so resuming on different hardware is
    /// sound), `epochs` (so a finished run can be extended), the
    /// checkpoint fields themselves, and the watchdog/fault-injection
    /// fields (monitoring is read-only and never changes the fault-free
    /// trajectory).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the field bytes: stable, dependency-free, and not
        // load-bearing for security — only for catching config mix-ups.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(&self.lr.to_bits().to_le_bytes());
        eat(&(self.batch_size as u64).to_le_bytes());
        eat(&(self.n_neg as u64).to_le_bytes());
        match self.grad_clip {
            None => eat(&[0]),
            Some(c) => {
                eat(&[1]);
                eat(&c.to_bits().to_le_bytes());
            }
        }
        eat(&self.seed.to_le_bytes());
        eat(&[self.resample_per_epoch as u8, self.adam_warm_restarts as u8]);
        h
    }

    /// Reduced reproduction scale: a larger learning rate and fewer,
    /// larger batches compensate for the far smaller number of
    /// optimization steps available on one CPU core (documented in
    /// `EXPERIMENTS.md`).
    pub fn repro_scale() -> Self {
        Self {
            lr: 3e-3,
            epochs: 22,
            batch_size: 128,
            ..Self::paper()
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            lr: 5e-3,
            epochs: 2,
            batch_size: 32,
            n_neg: 4,
            ..Self::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_two() {
        let c = MgbrConfig::paper();
        assert_eq!(c.d, 128);
        assert_eq!(c.gcn_layers, 2);
        assert_eq!(c.n_experts, 6);
        assert_eq!(c.mtl_layers, 2);
        assert_eq!(c.t_size, 99);
        assert_eq!(c.alpha_a, 0.1);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.beta_a, 0.3);
        assert_eq!(c.beta_b, 0.3);
        assert_eq!(c.obj_dim(), 256);
        assert_eq!(c.g0_dim(), 768);
        c.validate();
    }

    #[test]
    fn paper_train_config_matches_table_two() {
        let t = TrainConfig::paper();
        assert_eq!(t.lr, 2e-4);
        assert_eq!(t.batch_size, 64);
        assert_eq!(t.n_neg, 9);
    }

    #[test]
    fn variant_capability_matrix() {
        use MgbrVariant::*;
        assert!(Full.has_shared() && Full.has_aux_losses() && Full.has_adjusted_gates());
        assert!(!NoShared.has_shared() && NoShared.has_aux_losses());
        assert!(NoAux.has_shared() && !NoAux.has_aux_losses());
        assert!(!NoSharedNoAux.has_shared() && !NoSharedNoAux.has_aux_losses());
        assert!(!GenericGates.has_adjusted_gates() && GenericGates.has_shared());
        assert!(Hin.uses_hin() && Hin.has_shared() && Hin.has_aux_losses());
        assert_eq!(Full.label(), "MGBR");
        assert_eq!(NoSharedNoAux.label(), "MGBR-M-R");
        assert_eq!(MgbrVariant::all().len(), 6);
    }

    #[test]
    fn checkpointing_disabled_by_default() {
        let t = TrainConfig::paper();
        assert_eq!(t.checkpoint_every, 0);
        assert!(t.checkpoint_path.is_none());
        assert!(!t.resume);
        let t = t.with_checkpointing("/tmp/x.ckpt", 3);
        assert_eq!(t.checkpoint_every, 3);
        assert!(t.resume);
        assert_eq!(
            t.checkpoint_path.as_deref(),
            Some(std::path::Path::new("/tmp/x.ckpt"))
        );
    }

    #[test]
    fn fingerprint_tracks_trajectory_fields_only() {
        let base = TrainConfig::tiny();
        let fp = base.fingerprint();
        assert_eq!(fp, TrainConfig::tiny().fingerprint(), "must be stable");
        for (label, tc) in [
            (
                "lr",
                TrainConfig {
                    lr: 1e-3,
                    ..base.clone()
                },
            ),
            (
                "batch",
                TrainConfig {
                    batch_size: 16,
                    ..base.clone()
                },
            ),
            (
                "n_neg",
                TrainConfig {
                    n_neg: 2,
                    ..base.clone()
                },
            ),
            (
                "clip",
                TrainConfig {
                    grad_clip: None,
                    ..base.clone()
                },
            ),
            (
                "seed",
                TrainConfig {
                    seed: 8,
                    ..base.clone()
                },
            ),
            (
                "resample",
                TrainConfig {
                    resample_per_epoch: false,
                    ..base.clone()
                },
            ),
            (
                "warm",
                TrainConfig {
                    adam_warm_restarts: false,
                    ..base.clone()
                },
            ),
        ] {
            assert_ne!(fp, tc.fingerprint(), "{label} must change the fingerprint");
        }
        // Thread count, epoch budget, checkpoint plumbing, and the
        // watchdog/fault/trace knobs must NOT: they are legitimate
        // differences between a run and its resume (or its recovery
        // retry, or a traced re-run of an untraced original).
        let same = TrainConfig {
            threads: 4,
            epochs: 99,
            watchdog: WatchdogConfig {
                backoff: 0.1,
                max_recoveries: 9,
                ..WatchdogConfig::disabled()
            },
            numeric_fault: Some(NumericFault::spike_loss(3, 100.0)),
            trace_path: Some("/tmp/trace.jsonl".into()),
            ..base.clone()
        }
        .with_checkpointing("/tmp/y.ckpt", 1);
        assert_eq!(fp, same.fingerprint());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn degenerate_config_rejected() {
        MgbrConfig {
            d: 0,
            ..MgbrConfig::tiny()
        }
        .validate();
    }
}
