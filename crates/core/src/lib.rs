//! # mgbr-core
//!
//! The paper's primary contribution: **MGBR**, the multi-task-learning
//! based group-buying recommendation model (Zhai et al., ICDE 2023),
//! together with its five ablated variants and the training loop.
//!
//! ## Architecture (Fig. 2 of the paper)
//!
//! 1. **Multi-view embedding learning** ([`multiview`]) — GCNs over the
//!    initiator-view `G_UI`, participant-view `G_PI` and social-view
//!    `G_UP`, concatenated into object embeddings
//!    `e_u, e_i, e_p ∈ R^{2d}` (Eq. 1-6).
//! 2. **Multi-task learning module** ([`mtl`]) — `L` layers of `K` expert
//!    networks per sub-module (task A, task B, shared S) with generic and
//!    *adjusted* gated units (Eq. 7-15).
//! 3. **Prediction module** (per-task MLPs inside [`model`]) — producing
//!    `s(i|u)` and `s(p|u,i)` (Eq. 16-17).
//!
//! Optimization ([`loss`], [`trainer`]) uses BPR losses for both sub-tasks
//! plus the two auxiliary representation-refinement losses `L'_A`
//! (ListNet over item/participant-corrupted triples, Eq. 21) and `L'_B`
//! (BPR over item-corrupted triples, Eq. 24), combined per Eq. 25.
//!
//! ## Quick start
//!
//! ```no_run
//! use mgbr_core::{Mgbr, MgbrConfig, TrainConfig, trainer};
//! use mgbr_data::{synthetic, SyntheticConfig, split_dataset};
//!
//! let ds = synthetic::generate(&SyntheticConfig::default());
//! let split = split_dataset(&ds, (7.0, 3.0, 1.0), 42);
//! let mut model = Mgbr::new(MgbrConfig::repro_scale(), &split.train_dataset());
//! let report = trainer::train(&mut model, &ds, &split, &TrainConfig::repro_scale())
//!     .expect("training failed");
//! if let Some(last) = report.epoch_losses.last() {
//!     println!("final loss {last:.4}");
//! }
//! ```
//!
//! Training returns `Result<_, `[`TrainError`]`>`: divergence (after the
//! [`watchdog`]'s rollback/backoff recovery budget is spent), checkpoint
//! corruption, and config mismatches surface as typed errors instead of
//! panics, so sweeps can record a failed cell and move on.

pub mod config;
pub mod finetune;
pub mod freeze;
pub mod loss;
pub mod model;
pub mod mtl;
pub mod multiview;
pub mod trainer;
pub mod watchdog;

pub use config::{MgbrConfig, MgbrVariant, TrainConfig};
pub use finetune::{fine_tune, warm_start, FineTuneConfig};
pub use freeze::FrozenModel;
pub use model::{Mgbr, MgbrScorer};
pub use trainer::{train, train_with_validation, TrainReport, ValEntry};
pub use watchdog::{AnomalyKind, AnomalyReport, TrainError, Watchdog, WatchdogConfig};
