//! Frozen-model export: a tape-free, immutable snapshot of a trained
//! MGBR ready for online serving.
//!
//! [`Mgbr::freeze`] runs the three GCN views once and materializes the
//! final per-object representations (initiator, item and participant
//! embeddings, plus the precomputed Eq. 16 mean-participant row) next to
//! the model's **execution plan** — the very `mgbr_plan::Plan` the
//! trainer executes on the autograd tape — and the flat parameter list
//! backing its slots. Scoring runs that plan through the shared
//! interpreter on `mgbr-plan`'s pooled tensor backend with a
//! caller-provided [`Workspace`] — no autograd tape, no parameter
//! store, no hand-maintained replay of the forward, `Send + Sync`.
//!
//! **Parity guarantee.** Trainer and scorer execute the *same* op list
//! through the *same* interpreter; each interpreter backend realizes
//! each op with the same per-element arithmetic (same GEMM kernel, same
//! k-ascending expert mixing, same stable sigmoid/softmax formulas).
//! Scores are therefore **bitwise identical** to the training path at
//! any `MGBR_THREADS` setting — enforced by this module's tests and the
//! `serving_parity` golden suite. Because the whole scoring pipeline is
//! row-local (no op mixes information across batch rows), scoring
//! requests one-by-one, in chunks, or micro-batched yields identical
//! bits per request.
//!
//! **Serving-plan optimization.** At construction the two single-head
//! serving plans are derived from the stored plan: dead-slot pruning
//! drops the other head's ops, and (by default) the affine-fusion pass
//! folds `gemm → bias → activation` chains into single fused ops. Both
//! passes are bit-neutral — see [`FrozenModel::set_fused`] and the
//! fusion tests.
//!
//! ## Artifact format v2 (little-endian)
//!
//! ```text
//! magic   "MGBRFRZN"          8 bytes
//! version u32                 (2)
//! d u32, k u32                MTL width / experts per bank
//! variant_len u32, bytes      ablation label (UTF-8)
//! n_users u64, n_items u64
//! users / items / participants / mean_participant   shaped tensors
//! plan                        embedded execution plan (mgbr-plan encoding)
//! n_params u32; per param:    shaped tensor (canonical parameter order)
//! crc32 u32                   IEEE CRC-32 over every preceding byte
//! ```
//!
//! Shaped tensor = `rows u32, cols u32, rows·cols f32`. Saves go through
//! [`FrozenModel::save_atomic`] (tmp + fsync + rename, like checkpoint
//! v2); loads parse and CRC-verify the whole artifact before returning,
//! so truncated or bit-flipped files fail closed with a typed
//! [`CheckpointError`]. Version-1 artifacts (per-module weight fields
//! instead of an embedded plan) still load: the legacy fields are parsed,
//! their structure is lowered to a plan spec, and the weights are
//! flattened into the canonical parameter order — yielding bit-identical
//! scores to the v1 replay.

use std::io::{self, Read, Write};
use std::path::Path;

use mgbr_nn::{CheckpointError, CrcReader, CrcWriter, StepCtx};
use mgbr_plan::{
    build_score_plan, execute, ActKind, Bindings, LayerSpec, MlpSpec, MtlSpec, Plan, ScoreSpec,
    ShapeEnv, TensorBackend,
};
use mgbr_tensor::{Tensor, Workspace};

use crate::model::Mgbr;

const FROZEN_MAGIC: &[u8; 8] = b"MGBRFRZN";
const FROZEN_VERSION: u32 = 2;

/// Largest tensor side / element count accepted by the loader before
/// CRC verification (guards against allocating garbage sizes from a
/// corrupt header).
const MAX_DIM: u32 = 1 << 24;
const MAX_ELEMS: u64 = 1 << 28;
/// Parameter-count cap for v2 loads (64 MTL layers can't exceed this).
const MAX_PARAMS: u32 = 1 << 16;

/// An immutable, tape-free snapshot of a trained MGBR.
///
/// Construction: [`Mgbr::freeze`] or [`FrozenModel::load`]. Scoring
/// methods take a caller-owned [`Workspace`] (keep one per serving
/// thread); the model itself is shared freely (`Send + Sync`).
#[derive(Debug, Clone)]
pub struct FrozenModel {
    d: usize,
    k: usize,
    variant: String,
    n_users: usize,
    n_items: usize,
    users: Tensor,
    items: Tensor,
    participants: Tensor,
    mean_participant: Tensor,
    /// The full scoring plan (inputs `[e_u, e_i, e_p]`, outputs
    /// `[logit_a, logit_b]`) — what gets serialized.
    plan: Plan,
    /// Parameters backing `plan`'s slots, in canonical order.
    params: Vec<Tensor>,
    /// `plan` pruned to the Task-A head (optionally affine-fused).
    plan_a: Plan,
    /// `plan` pruned to the Task-B head (optionally affine-fused).
    plan_b: Plan,
    fused: bool,
}

impl Mgbr {
    /// Freezes the current parameters into a serving artifact: runs the
    /// embedding module once over the full graphs and snapshots the
    /// scoring plan together with the weights backing it.
    pub fn freeze(&self) -> FrozenModel {
        let ctx = StepCtx::new(&self.store);
        let emb = self.embeddings(&ctx);
        let users = emb.users.value();
        let items = emb.items.value();
        let participants = emb.participants.value();
        let mean_participant = participants.mean_rows();
        let params = self
            .score_param_ids
            .iter()
            .map(|&id| self.store.get(id).clone())
            .collect();
        FrozenModel::from_parts(
            self.cfg.d,
            self.cfg.n_experts,
            self.cfg.variant.label().to_string(),
            self.n_users(),
            self.n_items(),
            users,
            items,
            participants,
            mean_participant,
            self.score.plan.clone(),
            params,
        )
        .expect("a just-trained model must freeze consistently")
    }
}

// ---------------------------------------------------------------------------
// Workspace helpers (pure copies — parity-safe)
// ---------------------------------------------------------------------------

fn tile(ws: &Workspace, row: &[f32], n: usize) -> Tensor {
    let mut out = ws.take_tensor(n, row.len());
    for r in 0..n {
        out.row_mut(r).copy_from_slice(row);
    }
    out
}

fn gather(ws: &Workspace, src: &Tensor, idx: &[usize]) -> Tensor {
    let mut out = ws.take_tensor(idx.len(), src.cols());
    for (r, &i) in idx.iter().enumerate() {
        out.row_mut(r).copy_from_slice(src.row(i));
    }
    out
}

// ---------------------------------------------------------------------------
// Fold-in helpers (single-threaded scalar math — trivially bitwise
// deterministic at any thread count)
// ---------------------------------------------------------------------------

/// Deduplicates and ascending-sorts a fold-in anchor set, rejecting ids
/// outside the current row space.
fn normalize_neighbors(
    neighbors: &[usize],
    bound: usize,
    role: &str,
) -> Result<Vec<usize>, CheckpointError> {
    for &n in neighbors {
        if n >= bound {
            return Err(CheckpointError::Mismatch(format!(
                "fold-in anchor {role} {n} outside the current id space of {bound}"
            )));
        }
    }
    let mut sorted = neighbors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    Ok(sorted)
}

/// The closed-form solve `argmin_x Σ_{j∈anchors} ‖x − rows_j‖²`: the
/// mean of the anchor rows, accumulated in ascending-id order (f64
/// accumulator). Empty anchor set → global prior (mean over all rows).
fn solve_row(table: &Tensor, anchors: &[usize]) -> Vec<f32> {
    if anchors.is_empty() {
        return table.mean_rows().as_slice().to_vec();
    }
    let mut acc = vec![0.0f64; table.cols()];
    for &j in anchors {
        for (a, &x) in acc.iter_mut().zip(table.row(j)) {
            *a += f64::from(x);
        }
    }
    let inv = 1.0 / anchors.len() as f64;
    acc.into_iter().map(|a| (a * inv) as f32).collect()
}

/// Returns a copy of `table` with one extra row appended. Existing rows
/// are copied byte-for-byte — gathers over old ids read identical bits.
fn append_row(table: &Tensor, row: &[f32]) -> Tensor {
    let rows = table.rows();
    let mut out = Tensor::zeros(rows + 1, table.cols());
    out.as_mut_slice()[..rows * table.cols()].copy_from_slice(table.as_slice());
    out.row_mut(rows).copy_from_slice(row);
    out
}

impl FrozenModel {
    /// Assembles and validates a frozen model, deriving the per-head
    /// serving plans (affine-fused by default).
    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        d: usize,
        k: usize,
        variant: String,
        n_users: usize,
        n_items: usize,
        users: Tensor,
        items: Tensor,
        participants: Tensor,
        mean_participant: Tensor,
        plan: Plan,
        params: Vec<Tensor>,
    ) -> Result<Self, CheckpointError> {
        let mut model = Self {
            d,
            k,
            variant,
            n_users,
            n_items,
            users,
            items,
            participants,
            mean_participant,
            plan,
            params,
            plan_a: Plan::default(),
            plan_b: Plan::default(),
            fused: true,
        };
        model.validate()?;
        model.derive_serve_plans();
        Ok(model)
    }

    /// Rebuilds the per-head serving plans from the stored plan and the
    /// current `fused` setting.
    fn derive_serve_plans(&mut self) {
        let logit_a = self.plan.outputs[0];
        let logit_b = self.plan.outputs[1];
        let mut plan_a = self.plan.pruned(&[logit_a]);
        let mut plan_b = self.plan.pruned(&[logit_b]);
        if self.fused {
            plan_a = plan_a.fused_affine();
            plan_b = plan_b.fused_affine();
        }
        self.plan_a = plan_a;
        self.plan_b = plan_b;
    }

    /// Whether the serving plans run the affine-fusion pass (default
    /// `true`). Fusion is bit-neutral; the switch exists so tests and
    /// benchmarks can compare both modes.
    pub fn fused(&self) -> bool {
        self.fused
    }

    /// Toggles affine fusion and re-derives the serving plans.
    pub fn set_fused(&mut self, fused: bool) {
        if self.fused != fused {
            self.fused = fused;
            self.derive_serve_plans();
        }
    }

    /// The full stored scoring plan (both heads, unfused).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The derived Task-A serving plan.
    pub fn serve_plan_a(&self) -> &Plan {
        &self.plan_a
    }

    /// The derived Task-B serving plan.
    pub fn serve_plan_b(&self) -> &Plan {
        &self.plan_b
    }

    /// MTL width `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Experts per bank `K`.
    pub fn n_experts(&self) -> usize {
        self.k
    }

    /// `|U|` the model was built for (user and participant id space).
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// `|I|` the model was built for.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The ablation-variant label the model was trained as.
    pub fn variant(&self) -> &str {
        &self.variant
    }

    /// The flat parameter tensors, in the plan's canonical order.
    pub fn params(&self) -> &[Tensor] {
        &self.params
    }

    /// The frozen per-item representations (`|I| × 2d`): row `i` is
    /// item `i`'s serving embedding — the coarse-quantizer input for
    /// `mgbr-serve`'s pruned retrieval index.
    pub fn item_embeddings(&self) -> &Tensor {
        &self.items
    }

    /// The frozen per-user (initiator) representations (`|U| × 2d`).
    pub fn user_embeddings(&self) -> &Tensor {
        &self.users
    }

    /// The frozen per-participant representations (`|U| × 2d`).
    pub fn participant_embeddings(&self) -> &Tensor {
        &self.participants
    }

    /// Task A logits `MLP_A(g_A^L)` for one initiator over a candidate
    /// item list (Eq. 16 pre-sigmoid; σ is monotone, ranking is
    /// identical). `e_p` is the precomputed mean participant embedding.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty candidate list (workspace
    /// convention: shape errors are programming errors — `mgbr-serve`
    /// validates and returns typed errors instead).
    pub fn logits_a(&self, ws: &Workspace, user: usize, items: &[usize]) -> Vec<f32> {
        assert!(!items.is_empty(), "logits_a: empty candidate list");
        let n = items.len();
        let e_u = tile(ws, self.users.row(user), n);
        let e_i = gather(ws, &self.items, items);
        let e_p = tile(ws, self.mean_participant.row(0), n);
        self.run_head(ws, &self.plan_a, e_u, e_i, e_p)
    }

    /// Task B logits `MLP_B(g_B^L)` for one `(u, i)` context over a
    /// candidate participant list (Eq. 17 pre-sigmoid).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty candidate list.
    pub fn logits_b(
        &self,
        ws: &Workspace,
        user: usize,
        item: usize,
        participants: &[usize],
    ) -> Vec<f32> {
        assert!(!participants.is_empty(), "logits_b: empty candidate list");
        let n = participants.len();
        let e_u = tile(ws, self.users.row(user), n);
        let e_i = tile(ws, self.items.row(item), n);
        let e_p = gather(ws, &self.participants, participants);
        self.run_head(ws, &self.plan_b, e_u, e_i, e_p)
    }

    /// Task A logits for a batch of independent `(user, item)` pairs —
    /// the micro-batching entry point. Row-locality makes the result
    /// bitwise identical to scoring each pair alone.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty batch.
    pub fn logits_a_pairs(&self, ws: &Workspace, pairs: &[(usize, usize)]) -> Vec<f32> {
        assert!(!pairs.is_empty(), "logits_a_pairs: empty batch");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let e_u = gather(ws, &self.users, &users);
        let e_i = gather(ws, &self.items, &items);
        let e_p = tile(ws, self.mean_participant.row(0), pairs.len());
        self.run_head(ws, &self.plan_a, e_u, e_i, e_p)
    }

    /// Task B logits for a batch of independent `(user, item,
    /// participant)` triples.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty batch.
    pub fn logits_b_triples(&self, ws: &Workspace, triples: &[(usize, usize, usize)]) -> Vec<f32> {
        assert!(!triples.is_empty(), "logits_b_triples: empty batch");
        let users: Vec<usize> = triples.iter().map(|&(u, _, _)| u).collect();
        let items: Vec<usize> = triples.iter().map(|&(_, i, _)| i).collect();
        let parts: Vec<usize> = triples.iter().map(|&(_, _, p)| p).collect();
        let e_u = gather(ws, &self.users, &users);
        let e_i = gather(ws, &self.items, &items);
        let e_p = gather(ws, &self.participants, &parts);
        self.run_head(ws, &self.plan_b, e_u, e_i, e_p)
    }

    // -----------------------------------------------------------------
    // Cold-start fold-in: id-space growth with frozen parameters
    // -----------------------------------------------------------------

    /// Folds a cold user into the artifact and returns its new id
    /// (`= n_users` before the call; the id spaces grow densely).
    ///
    /// The fold-in is a fixed-graph embedding solve: every model
    /// parameter and every existing row is frozen, and the new row `x`
    /// minimizes the Laplacian-smoothing objective over the entity's
    /// observed edges, `min_x Σ_{j∈N} ‖x − E_j‖²`, whose unique
    /// minimizer is the arithmetic mean of the anchor rows `E_j`
    /// (`N` = same-role neighbors observed co-grouping with the cold
    /// user). With no observed edges yet, the solve degenerates to the
    /// global prior — the mean over all existing rows.
    ///
    /// Users live in two role tensors (initiator and participant); both
    /// get a row, each solved against the same neighbor set in its own
    /// role space. The stored `mean_participant` row is **not**
    /// recomputed: it is part of the frozen Task-A forward, and leaving
    /// its bytes untouched is what keeps every pre-existing entity's
    /// scores bitwise unchanged (pinned by `tests/online_loop.rs`).
    ///
    /// Deterministic: neighbors are deduplicated and accumulated in
    /// ascending-id order, single-threaded — identical bits at any
    /// `MGBR_THREADS` setting.
    pub fn fold_in_user(&mut self, neighbors: &[usize]) -> Result<usize, CheckpointError> {
        let anchors = normalize_neighbors(neighbors, self.n_users, "user")?;
        let user_row = solve_row(&self.users, &anchors);
        let part_row = solve_row(&self.participants, &anchors);
        self.users = append_row(&self.users, &user_row);
        self.participants = append_row(&self.participants, &part_row);
        self.n_users += 1;
        Ok(self.n_users - 1)
    }

    /// Folds a cold item into the artifact and returns its new id
    /// (`= n_items` before the call). Same solve as
    /// [`Self::fold_in_user`] with item-space anchors (items
    /// co-interacted by the cold item's observed buyers).
    pub fn fold_in_item(&mut self, neighbors: &[usize]) -> Result<usize, CheckpointError> {
        let anchors = normalize_neighbors(neighbors, self.n_items, "item")?;
        let item_row = solve_row(&self.items, &anchors);
        self.items = append_row(&self.items, &item_row);
        self.n_items += 1;
        Ok(self.n_items - 1)
    }

    /// Batch fold-in: applies [`Self::fold_in_user`] sequentially, so a
    /// later request may anchor on an id folded in earlier in the same
    /// batch. Fails atomically per request: on error, requests before
    /// the offender are already applied (ids in the returned error are
    /// unchanged by the failed request).
    pub fn fold_in_users(&mut self, batch: &[Vec<usize>]) -> Result<Vec<usize>, CheckpointError> {
        batch.iter().map(|n| self.fold_in_user(n)).collect()
    }

    /// Batch fold-in for items; see [`Self::fold_in_users`].
    pub fn fold_in_items(&mut self, batch: &[Vec<usize>]) -> Result<Vec<usize>, CheckpointError> {
        batch.iter().map(|n| self.fold_in_item(n)).collect()
    }

    /// Executes a serving plan on the pooled tensor backend and returns
    /// the head logits. Input tiles are recycled here; intermediates are
    /// recycled by the interpreter's retirement schedule.
    fn run_head(
        &self,
        ws: &Workspace,
        plan: &Plan,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
    ) -> Vec<f32> {
        let params: Vec<&Tensor> = self.params.iter().collect();
        let bindings = Bindings::default();
        let outs = execute(
            plan,
            &[&e_u, &e_i, &e_p],
            &params,
            TensorBackend::new(ws, &bindings),
        );
        ws.recycle_tensor(e_u);
        ws.recycle_tensor(e_i);
        ws.recycle_tensor(e_p);
        let mut outs = outs.into_iter();
        let logit = outs.next().expect("serving plan returns the head logit");
        let v = logit.as_slice().to_vec();
        ws.recycle_tensor(logit);
        v
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn put_tensor<W: Write>(w: &mut CrcWriter<W>, t: &Tensor) -> Result<(), CheckpointError> {
    w.put_u32(t.rows() as u32)?;
    w.put_u32(t.cols() as u32)?;
    w.put_tensor_data(t)
}

fn take_tensor<R: Read>(r: &mut CrcReader<R>) -> Result<Tensor, CheckpointError> {
    let rows = r.take_u32()?;
    let cols = r.take_u32()?;
    if rows == 0 || cols == 0 || rows > MAX_DIM || cols > MAX_DIM {
        return Err(CheckpointError::Format(format!(
            "implausible frozen tensor shape [{rows}x{cols}]"
        )));
    }
    if u64::from(rows) * u64::from(cols) > MAX_ELEMS {
        return Err(CheckpointError::Format(format!(
            "frozen tensor [{rows}x{cols}] exceeds the element cap"
        )));
    }
    r.take_tensor(rows as usize, cols as usize)
}

fn take_opt_tensor<R: Read>(r: &mut CrcReader<R>) -> Result<Option<Tensor>, CheckpointError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(take_tensor(r)?)),
        b => Err(CheckpointError::Format(format!(
            "invalid presence byte {b:#04x}"
        ))),
    }
}

fn take_bool<R: Read>(r: &mut CrcReader<R>) -> Result<bool, CheckpointError> {
    match r.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(CheckpointError::Format(format!(
            "invalid flag byte {b:#04x}"
        ))),
    }
}

fn act_from_code(tag: u8, param: f32) -> Result<ActKind, CheckpointError> {
    match tag {
        0 => Ok(ActKind::Identity),
        1 => Ok(ActKind::Relu),
        2 => Ok(ActKind::Sigmoid),
        3 => Ok(ActKind::Tanh),
        4 => Ok(ActKind::LeakyRelu(param)),
        t => Err(CheckpointError::Format(format!(
            "unknown activation tag {t}"
        ))),
    }
}

impl FrozenModel {
    /// Serializes the artifact (body + CRC-32 footer) to `writer`.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), CheckpointError> {
        let mut w = CrcWriter::new(writer);
        w.put(FROZEN_MAGIC)?;
        w.put_u32(FROZEN_VERSION)?;
        w.put_u32(self.d as u32)?;
        w.put_u32(self.k as u32)?;
        w.put_u32(self.variant.len() as u32)?;
        w.put(self.variant.as_bytes())?;
        w.put_u64(self.n_users as u64)?;
        w.put_u64(self.n_items as u64)?;
        put_tensor(&mut w, &self.users)?;
        put_tensor(&mut w, &self.items)?;
        put_tensor(&mut w, &self.participants)?;
        put_tensor(&mut w, &self.mean_participant)?;
        mgbr_plan::put_plan(&mut w, &self.plan)?;
        w.put_u32(self.params.len() as u32)?;
        for p in &self.params {
            put_tensor(&mut w, p)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Atomically saves the artifact to `path` (temp file + fsync +
    /// rename), so a crash mid-save never clobbers a previous good
    /// artifact.
    pub fn save_atomic(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let result = (|| -> Result<(), CheckpointError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = io::BufWriter::new(file);
            self.save(&mut writer)?;
            writer.flush()?;
            writer.get_ref().sync_all()?;
            Ok(())
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                std::fs::File::open(".")
            } else {
                std::fs::File::open(parent)
            };
            if let Ok(dir) = dir {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Parses and CRC-verifies a frozen artifact (version 2, or a legacy
    /// version-1 file upgraded on load). The whole file is validated
    /// before anything is returned — corrupt or truncated artifacts fail
    /// closed with a typed error.
    pub fn load<R: Read>(reader: R) -> Result<Self, CheckpointError> {
        let mut r = CrcReader::new(reader);
        let mut magic = [0u8; 8];
        r.take(&mut magic)?;
        if &magic != FROZEN_MAGIC {
            return Err(CheckpointError::Format(
                "not a frozen-model artifact (bad magic)".into(),
            ));
        }
        let version = r.take_u32()?;
        match version {
            1 => load_v1(r),
            2 => load_v2(r),
            v => Err(CheckpointError::Format(format!(
                "unsupported frozen-artifact version {v}"
            ))),
        }
    }

    /// Loads a frozen artifact from a file path.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let file = std::fs::File::open(path)?;
        Self::load(io::BufReader::new(file))
    }

    /// Cross-field consistency checks (CRC already guarantees the bytes
    /// are what was written; this guards against semantically broken
    /// artifacts produced by a different writer). The plan is
    /// shape-checked end to end: executed on a one-row batch it must
    /// produce scalar logits for both heads.
    ///
    /// Runs automatically on [`FrozenModel::load`]; public so serving
    /// hot-swap can re-validate a candidate artifact (whatever its
    /// origin) before publishing it to workers.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        let obj = self.users.cols();
        let same_width = self.items.cols() == obj
            && self.participants.cols() == obj
            && self.mean_participant.cols() == obj
            && self.mean_participant.rows() == 1;
        if !same_width {
            return Err(CheckpointError::Mismatch(
                "frozen embedding matrices disagree on object width".into(),
            ));
        }
        if self.users.rows() != self.n_users
            || self.items.rows() != self.n_items
            || self.participants.rows() != self.n_users
        {
            return Err(CheckpointError::Mismatch(
                "frozen embedding row counts disagree with declared id spaces".into(),
            ));
        }
        if self.plan.inputs.len() != 3 || self.plan.outputs.len() != 2 {
            return Err(CheckpointError::Mismatch(format!(
                "frozen plan has {} inputs / {} outputs, expected 3 / 2",
                self.plan.inputs.len(),
                self.plan.outputs.len()
            )));
        }
        if self.params.len() != self.plan.params.len() {
            return Err(CheckpointError::Mismatch(format!(
                "frozen plan declares {} parameter slots but {} tensors are stored",
                self.plan.params.len(),
                self.params.len()
            )));
        }
        let env = ShapeEnv {
            inputs: vec![(1, obj); 3],
            params: self.params.iter().map(|p| (p.rows(), p.cols())).collect(),
            ..ShapeEnv::default()
        };
        let shapes = self
            .plan
            .infer_shapes(&env)
            .map_err(|e| CheckpointError::Mismatch(format!("frozen plan shape check: {e}")))?;
        for (&out, head) in self.plan.outputs.iter().zip(["A", "B"]) {
            match shapes[out.index()] {
                Some((1, 1)) => {}
                other => {
                    return Err(CheckpointError::Mismatch(format!(
                        "head {head} logit has shape {other:?}, expected (1, 1)"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Reads the v2 body (after magic + version).
fn load_v2<R: Read>(mut r: CrcReader<R>) -> Result<FrozenModel, CheckpointError> {
    let d = r.take_u32()? as usize;
    let k = r.take_u32()? as usize;
    if d == 0 || d > MAX_DIM as usize || k == 0 || k > 4096 {
        return Err(CheckpointError::Format(format!(
            "implausible model dims d={d} k={k}"
        )));
    }
    let variant = take_variant(&mut r)?;
    let n_users = usize::try_from(r.take_u64()?)
        .map_err(|_| CheckpointError::Format("n_users overflows usize".into()))?;
    let n_items = usize::try_from(r.take_u64()?)
        .map_err(|_| CheckpointError::Format("n_items overflows usize".into()))?;
    let users = take_tensor(&mut r)?;
    let items = take_tensor(&mut r)?;
    let participants = take_tensor(&mut r)?;
    let mean_participant = take_tensor(&mut r)?;
    let plan = mgbr_plan::take_plan(&mut r)?;
    let n_params = r.take_u32()?;
    if n_params > MAX_PARAMS {
        return Err(CheckpointError::Format(format!(
            "implausible parameter count {n_params}"
        )));
    }
    let params = (0..n_params)
        .map(|_| take_tensor(&mut r))
        .collect::<Result<Vec<_>, _>>()?;
    r.verify_crc()?;
    FrozenModel::from_parts(
        d,
        k,
        variant,
        n_users,
        n_items,
        users,
        items,
        participants,
        mean_participant,
        plan,
        params,
    )
}

fn take_variant<R: Read>(r: &mut CrcReader<R>) -> Result<String, CheckpointError> {
    let variant_len = r.take_u32()?;
    if variant_len > 256 {
        return Err(CheckpointError::Format(format!(
            "implausible variant-label length {variant_len}"
        )));
    }
    let mut variant_bytes = vec![0u8; variant_len as usize];
    r.take(&mut variant_bytes)?;
    String::from_utf8(variant_bytes)
        .map_err(|_| CheckpointError::Format("variant label is not UTF-8".into()))
}

// ---------------------------------------------------------------------------
// Legacy v1 loader: parse the per-module weight fields, lower their
// structure to a plan spec, flatten the weights canonically.
// ---------------------------------------------------------------------------

/// Frozen pair-projection weights of one legacy adjusted gated unit.
struct LegacyAdjusted {
    ui: Option<Tensor>,
    ip: Option<Tensor>,
    up: Option<Tensor>,
}

/// One legacy MTL layer: fused expert banks plus gate weights.
struct LegacyLayer {
    experts_a: Tensor,
    experts_b: Tensor,
    experts_s: Option<Tensor>,
    gate_a: Tensor,
    gate_b: Tensor,
    gate_s: Option<Tensor>,
    adj_a: Option<LegacyAdjusted>,
    adj_b: Option<LegacyAdjusted>,
    dedup_inputs: bool,
}

/// A legacy prediction MLP (weights plus activation schedule).
struct LegacyMlp {
    layers: Vec<(Tensor, Option<Tensor>)>,
    hidden: ActKind,
    output: ActKind,
}

fn take_legacy_adjusted<R: Read>(
    r: &mut CrcReader<R>,
) -> Result<Option<LegacyAdjusted>, CheckpointError> {
    if !take_bool(r)? {
        return Ok(None);
    }
    Ok(Some(LegacyAdjusted {
        ui: take_opt_tensor(r)?,
        ip: take_opt_tensor(r)?,
        up: take_opt_tensor(r)?,
    }))
}

fn take_legacy_mlp<R: Read>(r: &mut CrcReader<R>) -> Result<LegacyMlp, CheckpointError> {
    let mut acts = [ActKind::Identity; 2];
    for slot in &mut acts {
        let tag = r.take_u8()?;
        let param = r.take_f32()?;
        *slot = act_from_code(tag, param)?;
    }
    let n = r.take_u32()?;
    if n == 0 || n > 64 {
        return Err(CheckpointError::Format(format!(
            "implausible MLP depth {n}"
        )));
    }
    let mut layers = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let w = take_tensor(r)?;
        let b = take_opt_tensor(r)?;
        layers.push((w, b));
    }
    Ok(LegacyMlp {
        layers,
        hidden: acts[0],
        output: acts[1],
    })
}

fn adj_mask(adj: &Option<LegacyAdjusted>) -> Option<[bool; 3]> {
    adj.as_ref()
        .map(|a| [a.ui.is_some(), a.ip.is_some(), a.up.is_some()])
}

/// Reads the v1 body (after magic + version) and upgrades it: the legacy
/// structure is lowered to a fresh plan and the weights flattened into
/// the canonical parameter order, so scoring replays the same arithmetic
/// the v1 code performed.
fn load_v1<R: Read>(mut r: CrcReader<R>) -> Result<FrozenModel, CheckpointError> {
    let d = r.take_u32()? as usize;
    let k = r.take_u32()? as usize;
    if d == 0 || d > MAX_DIM as usize || k == 0 || k > 4096 {
        return Err(CheckpointError::Format(format!(
            "implausible model dims d={d} k={k}"
        )));
    }
    let alpha_a = r.take_f32()?;
    let alpha_b = r.take_f32()?;
    let gate_softmax = take_bool(&mut r)?;
    let has_shared = take_bool(&mut r)?;
    let variant = take_variant(&mut r)?;
    let n_users = usize::try_from(r.take_u64()?)
        .map_err(|_| CheckpointError::Format("n_users overflows usize".into()))?;
    let n_items = usize::try_from(r.take_u64()?)
        .map_err(|_| CheckpointError::Format("n_items overflows usize".into()))?;
    let users = take_tensor(&mut r)?;
    let items = take_tensor(&mut r)?;
    let participants = take_tensor(&mut r)?;
    let mean_participant = take_tensor(&mut r)?;
    let n_layers = r.take_u32()?;
    if n_layers == 0 || n_layers > 64 {
        return Err(CheckpointError::Format(format!(
            "implausible MTL depth {n_layers}"
        )));
    }
    let mut layers = Vec::with_capacity(n_layers as usize);
    for _ in 0..n_layers {
        let dedup_inputs = take_bool(&mut r)?;
        layers.push(LegacyLayer {
            dedup_inputs,
            experts_a: take_tensor(&mut r)?,
            experts_b: take_tensor(&mut r)?,
            experts_s: take_opt_tensor(&mut r)?,
            gate_a: take_tensor(&mut r)?,
            gate_b: take_tensor(&mut r)?,
            gate_s: take_opt_tensor(&mut r)?,
            adj_a: take_legacy_adjusted(&mut r)?,
            adj_b: take_legacy_adjusted(&mut r)?,
        });
    }
    let mlp_a = take_legacy_mlp(&mut r)?;
    let mlp_b = take_legacy_mlp(&mut r)?;
    r.verify_crc()?;

    // Lower the legacy structure to a plan spec.
    let mut layer_specs = Vec::with_capacity(layers.len());
    for (i, layer) in layers.iter().enumerate() {
        if layer.experts_s.is_some() != has_shared {
            return Err(CheckpointError::Mismatch(format!(
                "layer {i}: shared-bank presence disagrees with has_shared"
            )));
        }
        layer_specs.push(LayerSpec {
            dedup_inputs: layer.dedup_inputs,
            has_gate_s: layer.gate_s.is_some(),
            adj_a: adj_mask(&layer.adj_a),
            adj_b: adj_mask(&layer.adj_b),
        });
    }
    let spec = ScoreSpec {
        mtl: MtlSpec {
            has_shared,
            gate_softmax,
            alpha_a,
            alpha_b,
            layers: layer_specs,
        },
        mlp_a: MlpSpec {
            layers: mlp_a.layers.iter().map(|(_, b)| b.is_some()).collect(),
            hidden: mlp_a.hidden,
            output: mlp_a.output,
        },
        mlp_b: MlpSpec {
            layers: mlp_b.layers.iter().map(|(_, b)| b.is_some()).collect(),
            hidden: mlp_b.hidden,
            output: mlp_b.output,
        },
    };
    let score = build_score_plan(&spec);

    // Flatten the weights into the canonical parameter order the plan
    // declares: per layer A/B/[S] banks, A/B/[S] gates, then the present
    // adjusted projections (ui, ip, up; gate A then gate B); then the
    // MLP layers (w, then bias when present).
    let mut params = Vec::new();
    for layer in layers {
        params.push(layer.experts_a);
        params.push(layer.experts_b);
        params.extend(layer.experts_s);
        params.push(layer.gate_a);
        params.push(layer.gate_b);
        params.extend(layer.gate_s);
        for adj in [layer.adj_a, layer.adj_b].into_iter().flatten() {
            params.extend(adj.ui);
            params.extend(adj.ip);
            params.extend(adj.up);
        }
    }
    for mlp in [mlp_a, mlp_b] {
        for (w, b) in mlp.layers {
            params.push(w);
            params.extend(b);
        }
    }
    FrozenModel::from_parts(
        d,
        k,
        variant,
        n_users,
        n_items,
        users,
        items,
        participants,
        mean_participant,
        score.plan,
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MgbrConfig, MgbrVariant};
    use mgbr_data::{synthetic, SyntheticConfig};
    use mgbr_eval::GroupBuyScorer;

    fn model(variant: MgbrVariant) -> Mgbr {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        Mgbr::new(MgbrConfig::tiny().with_variant(variant), &ds)
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn frozen_scores_match_training_scorer_bitwise_all_variants() {
        for variant in MgbrVariant::all() {
            let m = model(variant);
            let scorer = m.scorer();
            let frozen = m.freeze();
            let ws = Workspace::new();
            let items: Vec<u32> = (0..12).collect();
            let idx: Vec<usize> = items.iter().map(|&i| i as usize).collect();
            for user in [0usize, 3, 7] {
                assert_eq!(
                    bits(&frozen.logits_a(&ws, user, &idx)),
                    bits(&scorer.score_items(user as u32, &items)),
                    "{variant:?} task A user {user}"
                );
            }
            let parts: Vec<u32> = (1..9).collect();
            let pidx: Vec<usize> = parts.iter().map(|&p| p as usize).collect();
            assert_eq!(
                bits(&frozen.logits_b(&ws, 2, 4, &pidx)),
                bits(&scorer.score_participants(2, 4, &parts)),
                "{variant:?} task B"
            );
        }
    }

    #[test]
    fn fused_and_unfused_serving_plans_agree_bitwise() {
        for variant in MgbrVariant::all() {
            let m = model(variant);
            let fused = m.freeze();
            assert!(fused.fused(), "serving plans fuse by default");
            let mut unfused = fused.clone();
            unfused.set_fused(false);
            assert!(
                unfused.serve_plan_a().ops.len() > fused.serve_plan_a().ops.len(),
                "{variant:?}: fusion must shrink the op list"
            );
            let ws = Workspace::new();
            let idx: Vec<usize> = (0..10).collect();
            for user in [0usize, 5] {
                assert_eq!(
                    bits(&fused.logits_a(&ws, user, &idx)),
                    bits(&unfused.logits_a(&ws, user, &idx)),
                    "{variant:?} task A user {user}"
                );
            }
            assert_eq!(
                bits(&fused.logits_b(&ws, 1, 2, &idx[1..])),
                bits(&unfused.logits_b(&ws, 1, 2, &idx[1..])),
                "{variant:?} task B"
            );
        }
    }

    #[test]
    fn workspace_reuse_does_not_change_scores() {
        // Same workspace across many calls (buffers recycled and
        // re-drawn) must give identical bits to a fresh workspace.
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let shared_ws = Workspace::new();
        let idx: Vec<usize> = (0..10).collect();
        let first = frozen.logits_a(&shared_ws, 1, &idx);
        for _ in 0..5 {
            let _ = frozen.logits_b(&shared_ws, 0, 0, &[1, 2, 3]);
            assert_eq!(bits(&frozen.logits_a(&shared_ws, 1, &idx)), bits(&first));
        }
        let fresh = Workspace::new();
        assert_eq!(bits(&frozen.logits_a(&fresh, 1, &idx)), bits(&first));
    }

    #[test]
    fn batched_pairs_match_one_by_one() {
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let ws = Workspace::new();
        let pairs: Vec<(usize, usize)> = vec![(0, 5), (3, 1), (7, 9), (2, 2)];
        let batched = frozen.logits_a_pairs(&ws, &pairs);
        for (r, &(u, i)) in pairs.iter().enumerate() {
            let single = frozen.logits_a_pairs(&ws, &[(u, i)]);
            assert_eq!(batched[r].to_bits(), single[0].to_bits(), "row {r}");
        }
        let triples: Vec<(usize, usize, usize)> = vec![(0, 5, 1), (3, 1, 2), (7, 9, 4)];
        let batched_b = frozen.logits_b_triples(&ws, &triples);
        for (r, &t) in triples.iter().enumerate() {
            let single = frozen.logits_b_triples(&ws, &[t]);
            assert_eq!(batched_b[r].to_bits(), single[0].to_bits(), "row {r}");
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_scores_bitwise() {
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let mut buf = Vec::new();
        frozen.save(&mut buf).unwrap();
        let loaded = FrozenModel::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.variant(), frozen.variant());
        assert_eq!(loaded.n_users(), frozen.n_users());
        assert_eq!(loaded.n_items(), frozen.n_items());
        assert_eq!(loaded.plan(), frozen.plan(), "the stored plan round-trips");
        let ws = Workspace::new();
        let idx: Vec<usize> = (0..8).collect();
        assert_eq!(
            bits(&loaded.logits_a(&ws, 2, &idx)),
            bits(&frozen.logits_a(&ws, 2, &idx))
        );
        assert_eq!(
            bits(&loaded.logits_b(&ws, 2, 3, &idx[1..])),
            bits(&frozen.logits_b(&ws, 2, 3, &idx[1..]))
        );
    }

    #[test]
    fn atomic_save_then_file_load_roundtrips() {
        let m = model(MgbrVariant::NoShared);
        let frozen = m.freeze();
        let dir = std::env::temp_dir().join(format!("mgbr_frozen_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.frozen");
        frozen.save_atomic(&path).unwrap();
        let loaded = FrozenModel::load_from_file(&path).unwrap();
        let ws = Workspace::new();
        assert_eq!(
            bits(&loaded.logits_a(&ws, 0, &[0, 1, 2])),
            bits(&frozen.logits_a(&ws, 0, &[0, 1, 2]))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_artifacts_fail_closed() {
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let mut buf = Vec::new();
        frozen.save(&mut buf).unwrap();

        // Truncation at several depths.
        for cut in [4usize, 20, buf.len() / 2, buf.len() - 1] {
            let err = FrozenModel::load(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "cut={cut} gave {err:?}"
            );
        }
        // A single bit flip deep in the tensor payload trips the CRC.
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(FrozenModel::load(flipped.as_slice()).is_err());
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            FrozenModel::load(bad.as_slice()),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn fold_in_grows_id_spaces_and_leaves_existing_scores_bitwise() {
        let m = model(MgbrVariant::Full);
        let base = m.freeze();
        let mut grown = base.clone();
        let (nu, ni) = (base.n_users(), base.n_items());
        let new_user = grown.fold_in_user(&[0, 3, 7]).unwrap();
        let new_item = grown.fold_in_item(&[1, 4]).unwrap();
        assert_eq!(new_user, nu);
        assert_eq!(new_item, ni);
        assert_eq!(grown.n_users(), nu + 1);
        assert_eq!(grown.n_items(), ni + 1);
        grown.validate().expect("grown artifact stays consistent");

        // Every pre-existing score is bitwise untouched.
        let ws = Workspace::new();
        let idx: Vec<usize> = (0..ni.min(10)).collect();
        for user in [0usize, 3, nu - 1] {
            assert_eq!(
                bits(&grown.logits_a(&ws, user, &idx)),
                bits(&base.logits_a(&ws, user, &idx)),
                "task A user {user}"
            );
        }
        assert_eq!(
            bits(&grown.logits_b(&ws, 2, 4, &idx[1..])),
            bits(&base.logits_b(&ws, 2, 4, &idx[1..]))
        );

        // The folded-in entities are servable.
        assert_eq!(grown.logits_a(&ws, new_user, &idx).len(), idx.len());
        assert_eq!(grown.logits_a(&ws, 0, &[new_item]).len(), 1);
        assert_eq!(grown.logits_b(&ws, 0, 0, &[new_user]).len(), 1);
    }

    #[test]
    fn fold_in_solve_is_the_anchor_mean_and_deterministic() {
        let m = model(MgbrVariant::Full);
        let mut a = m.freeze();
        let mut b = a.clone();
        // Anchor order and duplicates must not matter.
        let ua = a.fold_in_user(&[7, 0, 3, 3]).unwrap();
        let ub = b.fold_in_user(&[0, 3, 7]).unwrap();
        assert_eq!(ua, ub);
        assert_eq!(
            a.user_embeddings().row(ua),
            b.user_embeddings().row(ub),
            "solve must be order/duplicate invariant"
        );
        // And it is the arithmetic mean of the anchor rows.
        let anchors = [0usize, 3, 7];
        let expect: Vec<f32> = (0..a.user_embeddings().cols())
            .map(|c| {
                let s: f64 = anchors
                    .iter()
                    .map(|&j| f64::from(m.freeze().user_embeddings().row(j)[c]))
                    .sum();
                (s / anchors.len() as f64) as f32
            })
            .collect();
        assert_eq!(a.user_embeddings().row(ua), expect.as_slice());
    }

    #[test]
    fn fold_in_with_no_edges_uses_the_global_prior() {
        let m = model(MgbrVariant::Full);
        let mut frozen = m.freeze();
        let prior = frozen.item_embeddings().mean_rows();
        let id = frozen.fold_in_item(&[]).unwrap();
        assert_eq!(frozen.item_embeddings().row(id), prior.as_slice());
    }

    #[test]
    fn fold_in_rejects_out_of_space_anchors_and_batches_apply_in_order() {
        let m = model(MgbrVariant::Full);
        let mut frozen = m.freeze();
        let nu = frozen.n_users();
        assert!(frozen.fold_in_user(&[nu]).is_err());
        assert_eq!(frozen.n_users(), nu, "failed fold-in must not grow");
        // A later batch entry may anchor on an earlier one's new id.
        let ids = frozen.fold_in_users(&[vec![0, 1], vec![nu]]).unwrap();
        assert_eq!(ids, vec![nu, nu + 1]);
        assert_eq!(
            frozen.user_embeddings().row(nu + 1),
            frozen.user_embeddings().row(nu),
            "single-anchor solve copies its anchor"
        );
    }

    #[test]
    fn grown_artifact_roundtrips_through_disk() {
        let m = model(MgbrVariant::Full);
        let mut frozen = m.freeze();
        let u = frozen.fold_in_user(&[0, 2]).unwrap();
        let _ = frozen.fold_in_item(&[5]).unwrap();
        let mut buf = Vec::new();
        frozen.save(&mut buf).unwrap();
        let loaded = FrozenModel::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.n_users(), frozen.n_users());
        assert_eq!(loaded.n_items(), frozen.n_items());
        let ws = Workspace::new();
        assert_eq!(
            bits(&loaded.logits_a(&ws, u, &[0, 1, 2])),
            bits(&frozen.logits_a(&ws, u, &[0, 1, 2]))
        );
    }

    #[test]
    fn frozen_mean_participant_is_precomputed_and_used() {
        // The artifact's mean row equals the mean of the participant
        // matrix, and Task A scoring consumes it (no per-call recompute
        // from the participant matrix is needed).
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let expected = frozen.participants.mean_rows();
        assert_eq!(
            frozen.mean_participant.as_slice(),
            expected.as_slice(),
            "stored mean must equal mean_rows() of the stored matrix"
        );
    }
}
