//! Frozen-model export: a tape-free, immutable snapshot of a trained
//! MGBR ready for online serving.
//!
//! [`Mgbr::freeze`] runs the three GCN views once and materializes the
//! final per-object representations (initiator, item and participant
//! embeddings, plus the precomputed Eq. 16 mean-participant row) next to
//! the MTL gate-stack and prediction-MLP weights. The resulting
//! [`FrozenModel`] scores requests with `mgbr-tensor`'s inference
//! kernels on a caller-provided [`Workspace`] — no autograd tape, no
//! parameter store, `Send + Sync`.
//!
//! **Parity guarantee.** Every frozen forward replays the exact
//! floating-point operation sequence the training-path
//! [`Mgbr::scorer`] performs: the same GEMM kernel, the same
//! `mix_experts` accumulation order (k-ascending over [own ‖ shared]
//! banks), the same gate-term addition order (ui, ip, up), and the same
//! stable sigmoid/softmax formulas. Scores are therefore **bitwise
//! identical** to the training path at any `MGBR_THREADS` setting —
//! enforced by this module's tests and the `serving_parity` golden
//! suite. Because the whole scoring pipeline is row-local (no op mixes
//! information across batch rows), scoring requests one-by-one, in
//! chunks, or micro-batched yields identical bits per request.
//!
//! ## Artifact format v1 (little-endian)
//!
//! ```text
//! magic   "MGBRFRZN"          8 bytes
//! version u32                 (1)
//! d u32, k u32                MTL width / experts per bank
//! alpha_a f32, alpha_b f32    adjusted-gate blend weights
//! gate_softmax u8, has_shared u8
//! variant_len u32, bytes      ablation label (UTF-8)
//! n_users u64, n_items u64
//! users / items / participants / mean_participant   shaped tensors
//! n_layers u32; per layer:
//!   dedup u8
//!   experts_a, experts_b, [experts_s]   shaped tensors (u8 presence)
//!   gate_a, gate_b, [gate_s]
//!   adj_a?, adj_b?: u8 presence, then 3 × (u8 presence + tensor)
//! mlp_a, mlp_b: hidden/output act (u8 tag + f32 param),
//!   n_layers u32, per layer: w tensor, u8 bias presence + bias tensor
//! crc32 u32                   IEEE CRC-32 over every preceding byte
//! ```
//!
//! Shaped tensor = `rows u32, cols u32, rows·cols f32`. Saves go through
//! [`FrozenModel::save_atomic`] (tmp + fsync + rename, like checkpoint
//! v2); loads parse and CRC-verify the whole artifact before returning,
//! so truncated or bit-flipped files fail closed with a typed
//! [`CheckpointError`].

use std::io::{self, Read, Write};
use std::path::Path;

use mgbr_nn::{Activation, CheckpointError, CrcReader, CrcWriter, Mlp, ParamId, StepCtx};
use mgbr_tensor::{affine_act_into, matmul_into, mix_col_blocks_into, FusedAct, Tensor, Workspace};

use crate::model::Mgbr;

const FROZEN_MAGIC: &[u8; 8] = b"MGBRFRZN";
const FROZEN_VERSION: u32 = 1;

/// Largest tensor side / element count accepted by the loader before
/// CRC verification (guards against allocating garbage sizes from a
/// corrupt header).
const MAX_DIM: u32 = 1 << 24;
const MAX_ELEMS: u64 = 1 << 28;

/// One affine layer of a frozen prediction MLP.
#[derive(Debug, Clone)]
pub struct FrozenAffine {
    /// Weight matrix (`in × out`).
    pub w: Tensor,
    /// Optional bias row (`1 × out`).
    pub b: Option<Tensor>,
}

/// A frozen prediction MLP (weights plus activation schedule).
#[derive(Debug, Clone)]
pub struct FrozenMlp {
    /// Affine layers, first to last.
    pub layers: Vec<FrozenAffine>,
    /// Activation after every non-final layer.
    pub hidden: Activation,
    /// Activation after the final layer.
    pub output: Activation,
}

/// Frozen pair-projection weights of one adjusted gated unit.
#[derive(Debug, Clone, Default)]
pub struct FrozenAdjusted {
    /// `e_u‖e_i` projection (`4d × K`), when present.
    pub ui: Option<Tensor>,
    /// `e_i‖e_p` projection.
    pub ip: Option<Tensor>,
    /// `e_u‖e_p` projection.
    pub up: Option<Tensor>,
}

/// One frozen MTL layer: fused expert banks plus gate weights.
#[derive(Debug, Clone)]
pub struct FrozenMtlLayer {
    /// Task A expert bank (`in × K·d`, experts as column blocks).
    pub experts_a: Tensor,
    /// Task B expert bank.
    pub experts_b: Tensor,
    /// Shared expert bank (absent in MGBR-M).
    pub experts_s: Option<Tensor>,
    /// Generic gate A weights (`in × K` or `in × 2K` with shared bank).
    pub gate_a: Tensor,
    /// Generic gate B weights.
    pub gate_b: Tensor,
    /// Gate S weights (`in_s × 3K`; absent on the final layer).
    pub gate_s: Option<Tensor>,
    /// Adjusted gated unit for gate A (absent in MGBR-G).
    pub adj_a: Option<FrozenAdjusted>,
    /// Adjusted gated unit for gate B.
    pub adj_b: Option<FrozenAdjusted>,
    /// First-layer dedup: feed gate states straight through instead of
    /// concatenating identical copies.
    pub dedup_inputs: bool,
}

/// An immutable, tape-free snapshot of a trained MGBR.
///
/// Construction: [`Mgbr::freeze`] or [`FrozenModel::load`]. Scoring
/// methods take a caller-owned [`Workspace`] (keep one per serving
/// thread); the model itself is shared freely (`Send + Sync`).
#[derive(Debug, Clone)]
pub struct FrozenModel {
    d: usize,
    k: usize,
    alpha_a: f32,
    alpha_b: f32,
    gate_softmax: bool,
    has_shared: bool,
    variant: String,
    n_users: usize,
    n_items: usize,
    users: Tensor,
    items: Tensor,
    participants: Tensor,
    mean_participant: Tensor,
    layers: Vec<FrozenMtlLayer>,
    mlp_a: FrozenMlp,
    mlp_b: FrozenMlp,
}

impl Mgbr {
    /// Freezes the current parameters into a serving artifact: runs the
    /// embedding module once over the full graphs and snapshots the MTL
    /// and prediction-head weights.
    pub fn freeze(&self) -> FrozenModel {
        let ctx = StepCtx::new(&self.store);
        let emb = self.embeddings(&ctx);
        let users = emb.users.value();
        let items = emb.items.value();
        let participants = emb.participants.value();
        let mean_participant = participants.mean_rows();

        let get = |id: ParamId| self.store.get(id).clone();
        let freeze_adj = |adj: &crate::mtl::AdjustedGate| FrozenAdjusted {
            ui: adj.ui.as_ref().map(|l| get(l.w)),
            ip: adj.ip.as_ref().map(|l| get(l.w)),
            up: adj.up.as_ref().map(|l| get(l.w)),
        };
        let layers = self
            .mtl
            .layers
            .iter()
            .map(|l| FrozenMtlLayer {
                experts_a: get(l.experts_a.w),
                experts_b: get(l.experts_b.w),
                experts_s: l.experts_s.as_ref().map(|b| get(b.w)),
                gate_a: get(l.gate_a.w),
                gate_b: get(l.gate_b.w),
                gate_s: l.gate_s.as_ref().map(|g| get(g.w)),
                adj_a: l.adj_a.as_ref().map(freeze_adj),
                adj_b: l.adj_b.as_ref().map(freeze_adj),
                dedup_inputs: l.dedup_inputs,
            })
            .collect();
        let freeze_mlp = |mlp: &Mlp| FrozenMlp {
            layers: mlp
                .layers()
                .iter()
                .map(|lin| FrozenAffine {
                    w: get(lin.w),
                    b: lin.b.map(get),
                })
                .collect(),
            hidden: mlp.hidden_act(),
            output: mlp.output_act(),
        };

        FrozenModel {
            d: self.cfg.d,
            k: self.cfg.n_experts,
            alpha_a: self.mtl.alpha_a,
            alpha_b: self.mtl.alpha_b,
            gate_softmax: self.mtl.gate_softmax,
            has_shared: self.mtl.has_shared,
            variant: self.cfg.variant.label().to_string(),
            n_users: self.n_users(),
            n_items: self.n_items(),
            users,
            items,
            participants,
            mean_participant,
            layers,
            mlp_a: freeze_mlp(&self.mlp_a),
            mlp_b: freeze_mlp(&self.mlp_b),
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace helpers (all pure copies or existing kernels — parity-safe)
// ---------------------------------------------------------------------------

fn gemm(ws: &Workspace, x: &Tensor, w: &Tensor) -> Tensor {
    let mut out = ws.take_tensor(x.rows(), w.cols());
    matmul_into(x, w, &mut out, 0.0);
    out
}

fn copy_of(ws: &Workspace, t: &Tensor) -> Tensor {
    let mut out = ws.take_tensor(t.rows(), t.cols());
    out.as_mut_slice().copy_from_slice(t.as_slice());
    out
}

fn concat(ws: &Workspace, parts: &[&Tensor]) -> Tensor {
    let rows = parts[0].rows();
    let cols = parts.iter().map(|p| p.cols()).sum();
    let mut out = ws.take_tensor(rows, cols);
    for r in 0..rows {
        let orow = out.row_mut(r);
        let mut off = 0;
        for p in parts {
            let prow = p.row(r);
            orow[off..off + prow.len()].copy_from_slice(prow);
            off += prow.len();
        }
    }
    out
}

fn tile(ws: &Workspace, row: &[f32], n: usize) -> Tensor {
    let mut out = ws.take_tensor(n, row.len());
    for r in 0..n {
        out.row_mut(r).copy_from_slice(row);
    }
    out
}

fn gather(ws: &Workspace, src: &Tensor, idx: &[usize]) -> Tensor {
    let mut out = ws.take_tensor(idx.len(), src.cols());
    for (r, &i) in idx.iter().enumerate() {
        out.row_mut(r).copy_from_slice(src.row(i));
    }
    out
}

/// Batched pair embeddings (the frozen mirror of `mtl::PairEmbeds`).
struct Pairs {
    ui: Tensor,
    ip: Tensor,
    up: Tensor,
}

enum GateKind {
    A,
    B,
}

impl FrozenModel {
    /// MTL width `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Experts per bank `K`.
    pub fn n_experts(&self) -> usize {
        self.k
    }

    /// `|U|` the model was built for (user and participant id space).
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// `|I|` the model was built for.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The ablation-variant label the model was trained as.
    pub fn variant(&self) -> &str {
        &self.variant
    }

    /// Task A logits `MLP_A(g_A^L)` for one initiator over a candidate
    /// item list (Eq. 16 pre-sigmoid; σ is monotone, ranking is
    /// identical). `e_p` is the precomputed mean participant embedding.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty candidate list (workspace
    /// convention: shape errors are programming errors — `mgbr-serve`
    /// validates and returns typed errors instead).
    pub fn logits_a(&self, ws: &Workspace, user: usize, items: &[usize]) -> Vec<f32> {
        assert!(!items.is_empty(), "logits_a: empty candidate list");
        let n = items.len();
        let e_u = tile(ws, self.users.row(user), n);
        let e_i = gather(ws, &self.items, items);
        let e_p = tile(ws, self.mean_participant.row(0), n);
        self.head(ws, e_u, e_i, e_p, GateKind::A)
    }

    /// Task B logits `MLP_B(g_B^L)` for one `(u, i)` context over a
    /// candidate participant list (Eq. 17 pre-sigmoid).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty candidate list.
    pub fn logits_b(
        &self,
        ws: &Workspace,
        user: usize,
        item: usize,
        participants: &[usize],
    ) -> Vec<f32> {
        assert!(!participants.is_empty(), "logits_b: empty candidate list");
        let n = participants.len();
        let e_u = tile(ws, self.users.row(user), n);
        let e_i = tile(ws, self.items.row(item), n);
        let e_p = gather(ws, &self.participants, participants);
        self.head(ws, e_u, e_i, e_p, GateKind::B)
    }

    /// Task A logits for a batch of independent `(user, item)` pairs —
    /// the micro-batching entry point. Row-locality makes the result
    /// bitwise identical to scoring each pair alone.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty batch.
    pub fn logits_a_pairs(&self, ws: &Workspace, pairs: &[(usize, usize)]) -> Vec<f32> {
        assert!(!pairs.is_empty(), "logits_a_pairs: empty batch");
        let users: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<usize> = pairs.iter().map(|&(_, i)| i).collect();
        let e_u = gather(ws, &self.users, &users);
        let e_i = gather(ws, &self.items, &items);
        let e_p = tile(ws, self.mean_participant.row(0), pairs.len());
        self.head(ws, e_u, e_i, e_p, GateKind::A)
    }

    /// Task B logits for a batch of independent `(user, item,
    /// participant)` triples.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids or an empty batch.
    pub fn logits_b_triples(&self, ws: &Workspace, triples: &[(usize, usize, usize)]) -> Vec<f32> {
        assert!(!triples.is_empty(), "logits_b_triples: empty batch");
        let users: Vec<usize> = triples.iter().map(|&(u, _, _)| u).collect();
        let items: Vec<usize> = triples.iter().map(|&(_, i, _)| i).collect();
        let parts: Vec<usize> = triples.iter().map(|&(_, _, p)| p).collect();
        let e_u = gather(ws, &self.users, &users);
        let e_i = gather(ws, &self.items, &items);
        let e_p = gather(ws, &self.participants, &parts);
        self.head(ws, e_u, e_i, e_p, GateKind::B)
    }

    fn head(
        &self,
        ws: &Workspace,
        e_u: Tensor,
        e_i: Tensor,
        e_p: Tensor,
        kind: GateKind,
    ) -> Vec<f32> {
        let (g_a, g_b) = self.mtl_forward(ws, &e_u, &e_i, &e_p);
        ws.recycle_tensor(e_u);
        ws.recycle_tensor(e_i);
        ws.recycle_tensor(e_p);
        let (used, dropped, mlp) = match kind {
            GateKind::A => (g_a, g_b, &self.mlp_a),
            GateKind::B => (g_b, g_a, &self.mlp_b),
        };
        ws.recycle_tensor(dropped);
        let out = self.mlp_forward(ws, mlp, used);
        let v = out.as_slice().to_vec();
        ws.recycle_tensor(out);
        v
    }

    fn normalize(&self, t: &mut Tensor) {
        if self.gate_softmax {
            t.softmax_rows_inplace();
        }
    }

    fn mix(&self, ws: &Workspace, weights: &Tensor, bank: &Tensor) -> Tensor {
        let mut out = ws.take_tensor(weights.rows(), self.d);
        mix_col_blocks_into(weights, bank, &mut out);
        out
    }

    fn task_input(
        &self,
        ws: &Workspace,
        layer: &FrozenMtlLayer,
        g_task: &Tensor,
        g_s: Option<&Tensor>,
    ) -> Tensor {
        match g_s {
            Some(gs) if !layer.dedup_inputs => concat(ws, &[g_task, gs]),
            _ => copy_of(ws, g_task),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn task_gate(
        &self,
        ws: &Workspace,
        gate_w: &Tensor,
        adj: Option<&FrozenAdjusted>,
        input: &Tensor,
        pairs: &Pairs,
        own_bank: &Tensor,
        shared_bank: Option<&Tensor>,
        alpha: f32,
        kind: GateKind,
    ) -> Tensor {
        // Generic unit: attention from the layer input over [own ‖ shared].
        let mut weights = gemm(ws, input, gate_w);
        self.normalize(&mut weights);
        let g1 = match shared_bank {
            Some(s) => {
                let combined = concat(ws, &[own_bank, s]);
                let g = self.mix(ws, &weights, &combined);
                ws.recycle_tensor(combined);
                g
            }
            None => self.mix(ws, &weights, own_bank),
        };
        ws.recycle_tensor(weights);

        let Some(adj) = adj else {
            return g1;
        };
        // Adjusted unit, terms in the training path's fixed order
        // (ui, ip, up) with the Eq. 11 / Eq. 13 bank routing.
        let terms: [(&Option<Tensor>, &Tensor, Option<&Tensor>); 3] = match kind {
            GateKind::A => [
                (&adj.ui, &pairs.ui, Some(own_bank)),
                (&adj.ip, &pairs.ip, shared_bank),
                (&adj.up, &pairs.up, shared_bank),
            ],
            GateKind::B => [
                (&adj.ui, &pairs.ui, shared_bank),
                (&adj.ip, &pairs.ip, Some(own_bank)),
                (&adj.up, &pairs.up, Some(own_bank)),
            ],
        };
        let mut g2: Option<Tensor> = None;
        for (proj, pair, bank) in terms {
            let (Some(w), Some(bank)) = (proj.as_ref(), bank) else {
                continue;
            };
            let mut aw = gemm(ws, pair, w);
            self.normalize(&mut aw);
            let term = self.mix(ws, &aw, bank);
            ws.recycle_tensor(aw);
            match g2.as_mut() {
                Some(acc) => {
                    for (a, &t) in acc.as_mut_slice().iter_mut().zip(term.as_slice()) {
                        *a += t;
                    }
                    ws.recycle_tensor(term);
                }
                None => g2 = Some(term),
            }
        }
        match g2 {
            Some(mut g2) => {
                g2.scale_inplace(alpha);
                let mut out = g1;
                for (a, &t) in out.as_mut_slice().iter_mut().zip(g2.as_slice()) {
                    *a += t;
                }
                ws.recycle_tensor(g2);
                out
            }
            None => g1,
        }
    }

    /// Runs all frozen MTL layers, returning `(g_A^L, g_B^L)` in
    /// workspace buffers (caller recycles).
    fn mtl_forward(
        &self,
        ws: &Workspace,
        e_u: &Tensor,
        e_i: &Tensor,
        e_p: &Tensor,
    ) -> (Tensor, Tensor) {
        let g0 = concat(ws, &[e_u, e_i, e_p]);
        let pairs = Pairs {
            ui: concat(ws, &[e_u, e_i]),
            ip: concat(ws, &[e_i, e_p]),
            up: concat(ws, &[e_u, e_p]),
        };
        let mut g_a = copy_of(ws, &g0);
        let mut g_b = copy_of(ws, &g0);
        let mut g_s = self.has_shared.then(|| copy_of(ws, &g0));
        ws.recycle_tensor(g0);

        for layer in &self.layers {
            let input_a = self.task_input(ws, layer, &g_a, g_s.as_ref());
            let input_b = self.task_input(ws, layer, &g_b, g_s.as_ref());
            let input_s = g_s.as_ref().map(|gs| {
                if layer.dedup_inputs {
                    copy_of(ws, gs)
                } else {
                    concat(ws, &[&g_a, gs, &g_b])
                }
            });

            let bank_a = gemm(ws, &input_a, &layer.experts_a);
            let bank_b = gemm(ws, &input_b, &layer.experts_b);
            let bank_s = match (&layer.experts_s, &input_s) {
                (Some(w), Some(input)) => Some(gemm(ws, input, w)),
                _ => None,
            };

            let next_a = self.task_gate(
                ws,
                &layer.gate_a,
                layer.adj_a.as_ref(),
                &input_a,
                &pairs,
                &bank_a,
                bank_s.as_ref(),
                self.alpha_a,
                GateKind::A,
            );
            let next_b = self.task_gate(
                ws,
                &layer.gate_b,
                layer.adj_b.as_ref(),
                &input_b,
                &pairs,
                &bank_b,
                bank_s.as_ref(),
                self.alpha_b,
                GateKind::B,
            );
            // Gate S (Eq. 14): mix over [A ‖ S ‖ B]; absent on the final
            // layer, where the shared state would feed nothing.
            let next_s = match (&layer.gate_s, &input_s, &bank_s) {
                (Some(gate), Some(input), Some(bs)) => {
                    let mut w = gemm(ws, input, gate);
                    self.normalize(&mut w);
                    let all = concat(ws, &[&bank_a, bs, &bank_b]);
                    let g = self.mix(ws, &w, &all);
                    ws.recycle_tensor(w);
                    ws.recycle_tensor(all);
                    Some(g)
                }
                _ => None,
            };

            ws.recycle_tensor(input_a);
            ws.recycle_tensor(input_b);
            if let Some(t) = input_s {
                ws.recycle_tensor(t);
            }
            ws.recycle_tensor(bank_a);
            ws.recycle_tensor(bank_b);
            if let Some(t) = bank_s {
                ws.recycle_tensor(t);
            }
            ws.recycle_tensor(std::mem::replace(&mut g_a, next_a));
            ws.recycle_tensor(std::mem::replace(&mut g_b, next_b));
            if let Some(old) = g_s.take() {
                ws.recycle_tensor(old);
            }
            g_s = next_s;
        }
        if let Some(t) = g_s {
            ws.recycle_tensor(t);
        }
        ws.recycle_tensor(pairs.ui);
        ws.recycle_tensor(pairs.ip);
        ws.recycle_tensor(pairs.up);
        (g_a, g_b)
    }

    fn mlp_forward(&self, ws: &Workspace, mlp: &FrozenMlp, x: Tensor) -> Tensor {
        let last = mlp.layers.len() - 1;
        let mut h = x;
        for (i, aff) in mlp.layers.iter().enumerate() {
            let act = if i == last { mlp.output } else { mlp.hidden };
            let mut out = ws.take_tensor(h.rows(), aff.w.cols());
            match act {
                Activation::Identity => {
                    affine_act_into(&h, &aff.w, aff.b.as_ref(), FusedAct::Identity, &mut out)
                }
                Activation::Relu => {
                    affine_act_into(&h, &aff.w, aff.b.as_ref(), FusedAct::Relu, &mut out)
                }
                Activation::Sigmoid => {
                    affine_act_into(&h, &aff.w, aff.b.as_ref(), FusedAct::Sigmoid, &mut out)
                }
                Activation::Tanh => {
                    affine_act_into(&h, &aff.w, aff.b.as_ref(), FusedAct::Identity, &mut out);
                    out.tanh_inplace();
                }
                Activation::LeakyRelu(slope) => {
                    affine_act_into(&h, &aff.w, aff.b.as_ref(), FusedAct::Identity, &mut out);
                    out.leaky_relu_inplace(slope);
                }
            }
            ws.recycle_tensor(h);
            h = out;
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn put_tensor<W: Write>(w: &mut CrcWriter<W>, t: &Tensor) -> Result<(), CheckpointError> {
    w.put_u32(t.rows() as u32)?;
    w.put_u32(t.cols() as u32)?;
    w.put_tensor_data(t)
}

fn put_opt_tensor<W: Write>(
    w: &mut CrcWriter<W>,
    t: Option<&Tensor>,
) -> Result<(), CheckpointError> {
    match t {
        Some(t) => {
            w.put_u8(1)?;
            put_tensor(w, t)
        }
        None => w.put_u8(0),
    }
}

fn take_tensor<R: Read>(r: &mut CrcReader<R>) -> Result<Tensor, CheckpointError> {
    let rows = r.take_u32()?;
    let cols = r.take_u32()?;
    if rows == 0 || cols == 0 || rows > MAX_DIM || cols > MAX_DIM {
        return Err(CheckpointError::Format(format!(
            "implausible frozen tensor shape [{rows}x{cols}]"
        )));
    }
    if u64::from(rows) * u64::from(cols) > MAX_ELEMS {
        return Err(CheckpointError::Format(format!(
            "frozen tensor [{rows}x{cols}] exceeds the element cap"
        )));
    }
    r.take_tensor(rows as usize, cols as usize)
}

fn take_opt_tensor<R: Read>(r: &mut CrcReader<R>) -> Result<Option<Tensor>, CheckpointError> {
    match r.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(take_tensor(r)?)),
        b => Err(CheckpointError::Format(format!(
            "invalid presence byte {b:#04x}"
        ))),
    }
}

fn take_bool<R: Read>(r: &mut CrcReader<R>) -> Result<bool, CheckpointError> {
    match r.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(CheckpointError::Format(format!(
            "invalid flag byte {b:#04x}"
        ))),
    }
}

fn act_code(a: Activation) -> (u8, f32) {
    match a {
        Activation::Identity => (0, 0.0),
        Activation::Relu => (1, 0.0),
        Activation::Sigmoid => (2, 0.0),
        Activation::Tanh => (3, 0.0),
        Activation::LeakyRelu(s) => (4, s),
    }
}

fn act_from_code(tag: u8, param: f32) -> Result<Activation, CheckpointError> {
    match tag {
        0 => Ok(Activation::Identity),
        1 => Ok(Activation::Relu),
        2 => Ok(Activation::Sigmoid),
        3 => Ok(Activation::Tanh),
        4 => Ok(Activation::LeakyRelu(param)),
        t => Err(CheckpointError::Format(format!(
            "unknown activation tag {t}"
        ))),
    }
}

fn put_mlp<W: Write>(w: &mut CrcWriter<W>, mlp: &FrozenMlp) -> Result<(), CheckpointError> {
    for act in [mlp.hidden, mlp.output] {
        let (tag, param) = act_code(act);
        w.put_u8(tag)?;
        w.put_f32(param)?;
    }
    w.put_u32(mlp.layers.len() as u32)?;
    for aff in &mlp.layers {
        put_tensor(w, &aff.w)?;
        put_opt_tensor(w, aff.b.as_ref())?;
    }
    Ok(())
}

fn take_mlp<R: Read>(r: &mut CrcReader<R>) -> Result<FrozenMlp, CheckpointError> {
    let mut acts = [Activation::Identity; 2];
    for slot in &mut acts {
        let tag = r.take_u8()?;
        let param = r.take_f32()?;
        *slot = act_from_code(tag, param)?;
    }
    let n = r.take_u32()?;
    if n == 0 || n > 64 {
        return Err(CheckpointError::Format(format!(
            "implausible MLP depth {n}"
        )));
    }
    let mut layers = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let w = take_tensor(r)?;
        let b = take_opt_tensor(r)?;
        layers.push(FrozenAffine { w, b });
    }
    Ok(FrozenMlp {
        layers,
        hidden: acts[0],
        output: acts[1],
    })
}

fn put_adjusted<W: Write>(
    w: &mut CrcWriter<W>,
    adj: Option<&FrozenAdjusted>,
) -> Result<(), CheckpointError> {
    match adj {
        Some(a) => {
            w.put_u8(1)?;
            put_opt_tensor(w, a.ui.as_ref())?;
            put_opt_tensor(w, a.ip.as_ref())?;
            put_opt_tensor(w, a.up.as_ref())
        }
        None => w.put_u8(0),
    }
}

fn take_adjusted<R: Read>(r: &mut CrcReader<R>) -> Result<Option<FrozenAdjusted>, CheckpointError> {
    if !take_bool(r)? {
        return Ok(None);
    }
    Ok(Some(FrozenAdjusted {
        ui: take_opt_tensor(r)?,
        ip: take_opt_tensor(r)?,
        up: take_opt_tensor(r)?,
    }))
}

impl FrozenModel {
    /// Serializes the artifact (body + CRC-32 footer) to `writer`.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), CheckpointError> {
        let mut w = CrcWriter::new(writer);
        w.put(FROZEN_MAGIC)?;
        w.put_u32(FROZEN_VERSION)?;
        w.put_u32(self.d as u32)?;
        w.put_u32(self.k as u32)?;
        w.put_f32(self.alpha_a)?;
        w.put_f32(self.alpha_b)?;
        w.put_u8(self.gate_softmax as u8)?;
        w.put_u8(self.has_shared as u8)?;
        w.put_u32(self.variant.len() as u32)?;
        w.put(self.variant.as_bytes())?;
        w.put_u64(self.n_users as u64)?;
        w.put_u64(self.n_items as u64)?;
        put_tensor(&mut w, &self.users)?;
        put_tensor(&mut w, &self.items)?;
        put_tensor(&mut w, &self.participants)?;
        put_tensor(&mut w, &self.mean_participant)?;
        w.put_u32(self.layers.len() as u32)?;
        for layer in &self.layers {
            w.put_u8(layer.dedup_inputs as u8)?;
            put_tensor(&mut w, &layer.experts_a)?;
            put_tensor(&mut w, &layer.experts_b)?;
            put_opt_tensor(&mut w, layer.experts_s.as_ref())?;
            put_tensor(&mut w, &layer.gate_a)?;
            put_tensor(&mut w, &layer.gate_b)?;
            put_opt_tensor(&mut w, layer.gate_s.as_ref())?;
            put_adjusted(&mut w, layer.adj_a.as_ref())?;
            put_adjusted(&mut w, layer.adj_b.as_ref())?;
        }
        put_mlp(&mut w, &self.mlp_a)?;
        put_mlp(&mut w, &self.mlp_b)?;
        w.finish()?;
        Ok(())
    }

    /// Atomically saves the artifact to `path` (temp file + fsync +
    /// rename), so a crash mid-save never clobbers a previous good
    /// artifact.
    pub fn save_atomic(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let result = (|| -> Result<(), CheckpointError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = io::BufWriter::new(file);
            self.save(&mut writer)?;
            writer.flush()?;
            writer.get_ref().sync_all()?;
            Ok(())
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                std::fs::File::open(".")
            } else {
                std::fs::File::open(parent)
            };
            if let Ok(dir) = dir {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Parses and CRC-verifies a frozen artifact. The whole file is
    /// validated before anything is returned — corrupt or truncated
    /// artifacts fail closed with a typed error.
    pub fn load<R: Read>(reader: R) -> Result<Self, CheckpointError> {
        let mut r = CrcReader::new(reader);
        let mut magic = [0u8; 8];
        r.take(&mut magic)?;
        if &magic != FROZEN_MAGIC {
            return Err(CheckpointError::Format(
                "not a frozen-model artifact (bad magic)".into(),
            ));
        }
        let version = r.take_u32()?;
        if version != FROZEN_VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported frozen-artifact version {version}"
            )));
        }
        let d = r.take_u32()? as usize;
        let k = r.take_u32()? as usize;
        if d == 0 || d > MAX_DIM as usize || k == 0 || k > 4096 {
            return Err(CheckpointError::Format(format!(
                "implausible model dims d={d} k={k}"
            )));
        }
        let alpha_a = r.take_f32()?;
        let alpha_b = r.take_f32()?;
        let gate_softmax = take_bool(&mut r)?;
        let has_shared = take_bool(&mut r)?;
        let variant_len = r.take_u32()?;
        if variant_len > 256 {
            return Err(CheckpointError::Format(format!(
                "implausible variant-label length {variant_len}"
            )));
        }
        let mut variant_bytes = vec![0u8; variant_len as usize];
        r.take(&mut variant_bytes)?;
        let variant = String::from_utf8(variant_bytes)
            .map_err(|_| CheckpointError::Format("variant label is not UTF-8".into()))?;
        let n_users = usize::try_from(r.take_u64()?)
            .map_err(|_| CheckpointError::Format("n_users overflows usize".into()))?;
        let n_items = usize::try_from(r.take_u64()?)
            .map_err(|_| CheckpointError::Format("n_items overflows usize".into()))?;
        let users = take_tensor(&mut r)?;
        let items = take_tensor(&mut r)?;
        let participants = take_tensor(&mut r)?;
        let mean_participant = take_tensor(&mut r)?;
        let n_layers = r.take_u32()?;
        if n_layers == 0 || n_layers > 64 {
            return Err(CheckpointError::Format(format!(
                "implausible MTL depth {n_layers}"
            )));
        }
        let mut layers = Vec::with_capacity(n_layers as usize);
        for _ in 0..n_layers {
            let dedup_inputs = take_bool(&mut r)?;
            layers.push(FrozenMtlLayer {
                dedup_inputs,
                experts_a: take_tensor(&mut r)?,
                experts_b: take_tensor(&mut r)?,
                experts_s: take_opt_tensor(&mut r)?,
                gate_a: take_tensor(&mut r)?,
                gate_b: take_tensor(&mut r)?,
                gate_s: take_opt_tensor(&mut r)?,
                adj_a: take_adjusted(&mut r)?,
                adj_b: take_adjusted(&mut r)?,
            });
        }
        let mlp_a = take_mlp(&mut r)?;
        let mlp_b = take_mlp(&mut r)?;
        r.verify_crc()?;

        let model = Self {
            d,
            k,
            alpha_a,
            alpha_b,
            gate_softmax,
            has_shared,
            variant,
            n_users,
            n_items,
            users,
            items,
            participants,
            mean_participant,
            layers,
            mlp_a,
            mlp_b,
        };
        model.validate()?;
        Ok(model)
    }

    /// Loads a frozen artifact from a file path.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let file = std::fs::File::open(path)?;
        Self::load(io::BufReader::new(file))
    }

    /// Cross-field consistency checks (CRC already guarantees the bytes
    /// are what was written; this guards against semantically broken
    /// artifacts produced by a different writer).
    fn validate(&self) -> Result<(), CheckpointError> {
        let obj = self.users.cols();
        let same_width = self.items.cols() == obj
            && self.participants.cols() == obj
            && self.mean_participant.cols() == obj
            && self.mean_participant.rows() == 1;
        if !same_width {
            return Err(CheckpointError::Mismatch(
                "frozen embedding matrices disagree on object width".into(),
            ));
        }
        if self.users.rows() != self.n_users
            || self.items.rows() != self.n_items
            || self.participants.rows() != self.n_users
        {
            return Err(CheckpointError::Mismatch(
                "frozen embedding row counts disagree with declared id spaces".into(),
            ));
        }
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.experts_a.cols() != self.k * self.d
                || layer.experts_b.cols() != self.k * self.d
            {
                return Err(CheckpointError::Mismatch(format!(
                    "layer {i}: expert bank width != K·d"
                )));
            }
            if layer.experts_s.is_some() != self.has_shared {
                return Err(CheckpointError::Mismatch(format!(
                    "layer {i}: shared-bank presence disagrees with has_shared"
                )));
            }
        }
        for (mlp, tag) in [(&self.mlp_a, "A"), (&self.mlp_b, "B")] {
            let first = &mlp.layers[0];
            if first.w.rows() != self.d {
                return Err(CheckpointError::Mismatch(format!(
                    "MLP {tag} input width {} != d {}",
                    first.w.rows(),
                    self.d
                )));
            }
            let last = &mlp.layers[mlp.layers.len() - 1];
            if last.w.cols() != 1 {
                return Err(CheckpointError::Mismatch(format!(
                    "MLP {tag} output width {} != 1",
                    last.w.cols()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MgbrConfig, MgbrVariant};
    use mgbr_data::{synthetic, SyntheticConfig};
    use mgbr_eval::GroupBuyScorer;

    fn model(variant: MgbrVariant) -> Mgbr {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        Mgbr::new(MgbrConfig::tiny().with_variant(variant), &ds)
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn frozen_scores_match_training_scorer_bitwise_all_variants() {
        for variant in MgbrVariant::all() {
            let m = model(variant);
            let scorer = m.scorer();
            let frozen = m.freeze();
            let ws = Workspace::new();
            let items: Vec<u32> = (0..12).collect();
            let idx: Vec<usize> = items.iter().map(|&i| i as usize).collect();
            for user in [0usize, 3, 7] {
                assert_eq!(
                    bits(&frozen.logits_a(&ws, user, &idx)),
                    bits(&scorer.score_items(user as u32, &items)),
                    "{variant:?} task A user {user}"
                );
            }
            let parts: Vec<u32> = (1..9).collect();
            let pidx: Vec<usize> = parts.iter().map(|&p| p as usize).collect();
            assert_eq!(
                bits(&frozen.logits_b(&ws, 2, 4, &pidx)),
                bits(&scorer.score_participants(2, 4, &parts)),
                "{variant:?} task B"
            );
        }
    }

    #[test]
    fn workspace_reuse_does_not_change_scores() {
        // Same workspace across many calls (buffers recycled and
        // re-drawn) must give identical bits to a fresh workspace.
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let shared_ws = Workspace::new();
        let idx: Vec<usize> = (0..10).collect();
        let first = frozen.logits_a(&shared_ws, 1, &idx);
        for _ in 0..5 {
            let _ = frozen.logits_b(&shared_ws, 0, 0, &[1, 2, 3]);
            assert_eq!(bits(&frozen.logits_a(&shared_ws, 1, &idx)), bits(&first));
        }
        let fresh = Workspace::new();
        assert_eq!(bits(&frozen.logits_a(&fresh, 1, &idx)), bits(&first));
    }

    #[test]
    fn batched_pairs_match_one_by_one() {
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let ws = Workspace::new();
        let pairs: Vec<(usize, usize)> = vec![(0, 5), (3, 1), (7, 9), (2, 2)];
        let batched = frozen.logits_a_pairs(&ws, &pairs);
        for (r, &(u, i)) in pairs.iter().enumerate() {
            let single = frozen.logits_a_pairs(&ws, &[(u, i)]);
            assert_eq!(batched[r].to_bits(), single[0].to_bits(), "row {r}");
        }
        let triples: Vec<(usize, usize, usize)> = vec![(0, 5, 1), (3, 1, 2), (7, 9, 4)];
        let batched_b = frozen.logits_b_triples(&ws, &triples);
        for (r, &t) in triples.iter().enumerate() {
            let single = frozen.logits_b_triples(&ws, &[t]);
            assert_eq!(batched_b[r].to_bits(), single[0].to_bits(), "row {r}");
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_scores_bitwise() {
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let mut buf = Vec::new();
        frozen.save(&mut buf).unwrap();
        let loaded = FrozenModel::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.variant(), frozen.variant());
        assert_eq!(loaded.n_users(), frozen.n_users());
        assert_eq!(loaded.n_items(), frozen.n_items());
        let ws = Workspace::new();
        let idx: Vec<usize> = (0..8).collect();
        assert_eq!(
            bits(&loaded.logits_a(&ws, 2, &idx)),
            bits(&frozen.logits_a(&ws, 2, &idx))
        );
        assert_eq!(
            bits(&loaded.logits_b(&ws, 2, 3, &idx[1..])),
            bits(&frozen.logits_b(&ws, 2, 3, &idx[1..]))
        );
    }

    #[test]
    fn atomic_save_then_file_load_roundtrips() {
        let m = model(MgbrVariant::NoShared);
        let frozen = m.freeze();
        let dir = std::env::temp_dir().join(format!("mgbr_frozen_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.frozen");
        frozen.save_atomic(&path).unwrap();
        let loaded = FrozenModel::load_from_file(&path).unwrap();
        let ws = Workspace::new();
        assert_eq!(
            bits(&loaded.logits_a(&ws, 0, &[0, 1, 2])),
            bits(&frozen.logits_a(&ws, 0, &[0, 1, 2]))
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_artifacts_fail_closed() {
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let mut buf = Vec::new();
        frozen.save(&mut buf).unwrap();

        // Truncation at several depths.
        for cut in [4usize, 20, buf.len() / 2, buf.len() - 1] {
            let err = FrozenModel::load(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "cut={cut} gave {err:?}"
            );
        }
        // A single bit flip deep in the tensor payload trips the CRC.
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(FrozenModel::load(flipped.as_slice()).is_err());
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            FrozenModel::load(bad.as_slice()),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn frozen_mean_participant_is_precomputed_and_used() {
        // The artifact's mean row equals the mean of the participant
        // matrix, and Task A scoring consumes it (no per-call recompute
        // from the participant matrix is needed).
        let m = model(MgbrVariant::Full);
        let frozen = m.freeze();
        let expected = frozen.participants.mean_rows();
        assert_eq!(
            frozen.mean_participant.as_slice(),
            expected.as_slice(),
            "stored mean must equal mean_rows() of the stored matrix"
        );
    }
}
