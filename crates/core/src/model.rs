//! The assembled MGBR model: embedding module + MTL module + per-task
//! prediction MLPs (Eq. 16-17), plus the frozen scorer used for
//! evaluation.
//!
//! Since the execution-plan refactor the whole scoring forward (MTL
//! stack and both heads) is lowered once, at construction, to a
//! [`ScorePlan`]; every logit call executes that plan (or a pruned
//! single-head derivative) on the autograd tape through the shared
//! interpreter. [`Mgbr::freeze`] serializes the very same plan, so the
//! online scorer replays bit-for-bit what the trainer computed.

use std::rc::Rc;

use mgbr_autograd::Var;
use mgbr_data::Dataset;
use mgbr_eval::GroupBuyScorer;
use mgbr_nn::{Activation, Mlp, ParamId, ParamStore, StepCtx};
use mgbr_plan::{build_score_plan, ActKind, MlpSpec, Plan, ScorePlan, ScoreSpec};
use mgbr_tensor::{Pcg32, Tensor};

use crate::mtl::{run_taped, MtlModule};
use crate::multiview::{EmbeddingModule, ObjectEmbeddings};
use crate::MgbrConfig;

/// Maps an `mgbr_nn` activation to its plan-IR equivalent.
pub(crate) fn act_kind(act: Activation) -> ActKind {
    match act {
        Activation::Identity => ActKind::Identity,
        Activation::Relu => ActKind::Relu,
        Activation::Sigmoid => ActKind::Sigmoid,
        Activation::Tanh => ActKind::Tanh,
        Activation::LeakyRelu(slope) => ActKind::LeakyRelu(slope),
    }
}

/// Lowers a registered prediction MLP to its structural spec.
fn mlp_spec(mlp: &Mlp) -> MlpSpec {
    MlpSpec {
        layers: mlp.layers().iter().map(|l| l.b.is_some()).collect(),
        hidden: act_kind(mlp.hidden_act()),
        output: act_kind(mlp.output_act()),
    }
}

/// The MGBR model (or one of its ablated variants, per
/// [`MgbrConfig::variant`]).
pub struct Mgbr {
    /// The hyper-parameters this model was built with.
    pub cfg: MgbrConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    embedding: EmbeddingModule,
    /// The full scoring plan (both heads) and its layer trace ranges.
    pub(crate) score: ScorePlan,
    /// Parameters backing the score plan's slots, in canonical order.
    pub(crate) score_param_ids: Vec<ParamId>,
    /// `score` pruned to `[logit_a, g_B]`: the Task-A head without the
    /// Task-B MLP. Keeping `g_B` live preserves every MTL op, so the op
    /// indices in `score.layers` remain valid.
    plan_a: Plan,
    /// `score` pruned to `[logit_b, g_A]`, symmetrically.
    plan_b: Plan,
    n_users: usize,
    n_items: usize,
}

impl Mgbr {
    /// Builds the model over the training partition's interaction graphs.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config or empty id spaces.
    pub fn new(cfg: MgbrConfig, train: &Dataset) -> Self {
        cfg.validate();
        assert!(train.n_users > 0 && train.n_items > 0, "empty id spaces");
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let embedding = EmbeddingModule::new(&mut store, &mut rng, &cfg, train);
        let mtl = MtlModule::new(&mut store, &mut rng, &cfg);
        let mut dims = vec![cfg.d];
        dims.extend_from_slice(&cfg.mlp_hidden);
        dims.push(1);
        let mlp_a = Mlp::new(
            &mut store,
            &mut rng,
            "mlpA",
            &dims,
            Activation::Relu,
            Activation::Identity,
        );
        let mlp_b = Mlp::new(
            &mut store,
            &mut rng,
            "mlpB",
            &dims,
            Activation::Relu,
            Activation::Identity,
        );

        let score = build_score_plan(&ScoreSpec {
            mtl: mtl.spec.clone(),
            mlp_a: mlp_spec(&mlp_a),
            mlp_b: mlp_spec(&mlp_b),
        });
        let mut score_param_ids = mtl.param_ids.clone();
        for mlp in [&mlp_a, &mlp_b] {
            for layer in mlp.layers() {
                score_param_ids.push(layer.w);
                score_param_ids.extend(layer.b);
            }
        }
        assert_eq!(
            score.plan.params.len(),
            score_param_ids.len(),
            "score plan parameter slots must match the registered parameters"
        );
        let plan_a = score.plan.pruned(&[score.logit_a, score.g_b]);
        let plan_b = score.plan.pruned(&[score.logit_b, score.g_a]);
        Self {
            cfg,
            store,
            embedding,
            score,
            score_param_ids,
            plan_a,
            plan_b,
            n_users: train.n_users,
            n_items: train.n_items,
        }
    }

    /// `|U|` this model was built for.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// `|I|` this model was built for.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total trainable scalars (Table V's "Para. number").
    pub fn param_count(&self) -> usize {
        self.store.scalar_count()
    }

    /// Runs the embedding module for this step.
    pub fn embeddings(&self, ctx: &StepCtx<'_>) -> ObjectEmbeddings {
        self.embedding.forward(ctx)
    }

    /// Executes one of the scoring plans on the tape; `plan` must share
    /// `score`'s MTL-prefix op indices so the layer trace ranges apply.
    fn run_score_plan(
        &self,
        ctx: &StepCtx<'_>,
        plan: &Plan,
        e_u: &Var,
        e_i: &Var,
        e_p: &Var,
    ) -> Vec<Var> {
        run_taped(
            ctx,
            plan,
            &self.score.layers,
            &self.score_param_ids,
            &[e_u, e_i, e_p],
        )
    }

    /// Task A pre-sigmoid logit `MLP_A(g_A^L)` for batched triples. The
    /// caller chooses `e_p` (mean-user for ranking, a concrete
    /// participant for the auxiliary loss `s(u,i,p)`).
    ///
    /// Losses train on logits: `σ` (Eq. 16) is strictly monotone, so the
    /// ranking objective is identical, while BPR on already-squashed
    /// scores saturates `σ` to exact 0/1 in `f32` and permanently kills
    /// the gradient (observed in integration testing; see DESIGN.md §2).
    pub fn logit_a(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> Var {
        self.run_score_plan(ctx, &self.plan_a, e_u, e_i, e_p)
            .swap_remove(0)
    }

    /// Task B pre-sigmoid logit `MLP_B(g_B^L)` for batched triples.
    pub fn logit_b(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> Var {
        self.run_score_plan(ctx, &self.plan_b, e_u, e_i, e_p)
            .swap_remove(0)
    }

    /// Task A score `s(i|u) = σ(MLP_A(g_A^L))` (Eq. 16).
    pub fn score_a(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> Var {
        self.logit_a(ctx, e_u, e_i, e_p).sigmoid()
    }

    /// Task B score `s(p|u,i) = σ(MLP_B(g_B^L))` (Eq. 17).
    pub fn score_b(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> Var {
        self.logit_b(ctx, e_u, e_i, e_p).sigmoid()
    }

    /// Both heads in one MTL pass (used when a batch needs A- and
    /// B-scores of the same triples).
    pub fn score_both(&self, ctx: &StepCtx<'_>, e_u: &Var, e_i: &Var, e_p: &Var) -> (Var, Var) {
        let mut outs = self
            .run_score_plan(ctx, &self.score.plan, e_u, e_i, e_p)
            .into_iter();
        let logit_a = outs.next().expect("plan returns logit_a");
        let logit_b = outs.next().expect("plan returns logit_b");
        (logit_a.sigmoid(), logit_b.sigmoid())
    }

    /// Freezes the current parameters into an evaluation scorer,
    /// precomputing the full-graph embeddings once.
    pub fn scorer(&self) -> MgbrScorer<'_> {
        let ctx = StepCtx::new(&self.store);
        let emb = self.embeddings(&ctx);
        let users = emb.users.value();
        let items = emb.items.value();
        let participants = emb.participants.value();
        let mean_participant = participants.mean_rows();
        let mean_tile = std::cell::RefCell::new(mean_participant.clone());
        MgbrScorer {
            model: self,
            users,
            items,
            participants,
            mean_participant,
            mean_tile,
        }
    }
}

/// A frozen MGBR ready for ranking evaluation.
///
/// Embeddings are precomputed; each scoring call replays only the MTL and
/// prediction modules on the candidate batch.
pub struct MgbrScorer<'m> {
    model: &'m Mgbr,
    users: Tensor,
    items: Tensor,
    participants: Tensor,
    mean_participant: Tensor,
    /// Grow-once cache of the Eq. 16 mean-participant row tiled to the
    /// largest batch size seen, so repeated Task A calls (one per ranked
    /// user) stop re-materializing the same rows.
    mean_tile: std::cell::RefCell<Tensor>,
}

impl MgbrScorer<'_> {
    /// The frozen initiator-role embedding matrix (`|U| × 2d`).
    pub fn user_embeddings(&self) -> &Tensor {
        &self.users
    }

    /// The frozen item embedding matrix (`|I| × 2d`).
    pub fn item_embeddings(&self) -> &Tensor {
        &self.items
    }

    /// The frozen participant-role embedding matrix (`|U| × 2d`).
    pub fn participant_embeddings(&self) -> &Tensor {
        &self.participants
    }

    fn tile(&self, row: &[f32], n: usize) -> Tensor {
        let mut t = Tensor::zeros(n, row.len());
        for r in 0..n {
            t.row_mut(r).copy_from_slice(row);
        }
        t
    }

    /// The mean-participant row tiled to `n` rows, served from the
    /// grow-once cache. Every row is a copy of the same precomputed
    /// vector, so caching cannot change any score bit.
    fn mean_tile(&self, n: usize) -> Tensor {
        let mut cache = self.mean_tile.borrow_mut();
        if cache.rows() < n {
            *cache = self.tile(self.mean_participant.row(0), n);
        }
        if cache.rows() == n {
            cache.clone()
        } else {
            cache.slice_rows(0, n)
        }
    }
}

impl GroupBuyScorer for MgbrScorer<'_> {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let n = items.len();
        let ctx = StepCtx::new(&self.model.store);
        let e_u = ctx.constant(self.tile(self.users.row(user as usize), n));
        let idx: Vec<usize> = items.iter().map(|&i| i as usize).collect();
        let e_i = ctx.constant(self.items.gather_rows(&idx));
        // Task A uses the mean over all users' participant-role
        // embeddings as e_p (Eq. 16's averaging rule). Ranking happens on
        // the pre-sigmoid logits: σ is strictly monotone, so the order is
        // Eq. 16's, but large logits would flatten to exactly 1.0 in f32
        // and destroy the ordering information.
        let e_p = ctx.constant(self.mean_tile(n));
        self.model
            .logit_a(&ctx, &e_u, &e_i, &e_p)
            .value()
            .into_vec()
    }

    fn score_participants(&self, user: u32, item: u32, candidates: &[u32]) -> Vec<f32> {
        let n = candidates.len();
        let ctx = StepCtx::new(&self.model.store);
        let e_u = ctx.constant(self.tile(self.users.row(user as usize), n));
        let e_i = ctx.constant(self.tile(self.items.row(item as usize), n));
        let idx: Vec<usize> = candidates.iter().map(|&p| p as usize).collect();
        let e_p = ctx.constant(self.participants.gather_rows(&idx));
        self.model
            .logit_b(&ctx, &e_u, &e_i, &e_p)
            .value()
            .into_vec()
    }

    fn name(&self) -> &str {
        self.model.cfg.variant.label()
    }
}

/// Convenience: gathers batched embedding rows for index slices.
pub(crate) fn gather(emb: &Var, idx: Vec<usize>) -> Var {
    emb.gather_rows(Rc::new(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MgbrVariant;
    use mgbr_data::{synthetic, SyntheticConfig};

    fn model(variant: MgbrVariant) -> (Mgbr, Dataset) {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let m = Mgbr::new(MgbrConfig::tiny().with_variant(variant), &ds);
        (m, ds)
    }

    #[test]
    fn scorer_outputs_are_finite_logits() {
        let (m, ds) = model(MgbrVariant::Full);
        let scorer = m.scorer();
        let items: Vec<u32> = (0..10).collect();
        let s = scorer.score_items(0, &items);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|x| x.is_finite()), "{s:?}");

        let parts: Vec<u32> = (1..11).collect();
        let sp = scorer.score_participants(0, 0, &parts);
        assert_eq!(sp.len(), 10);
        assert!(sp.iter().all(|x| x.is_finite()));
        let _ = ds;
    }

    #[test]
    fn eq16_scores_are_probabilities_and_order_matches_logits() {
        // The paper-facing score_a/score_b (Eq. 16-17) stay in (0,1) and
        // rank identically to the logits the scorer uses.
        let (m, _) = model(MgbrVariant::Full);
        let ctx = StepCtx::new(&m.store);
        let emb = m.embeddings(&ctx);
        let e_u = gather(&emb.users, vec![0; 6]);
        let e_i = gather(&emb.items, vec![0, 1, 2, 3, 4, 5]);
        let e_p = gather(&emb.participants, vec![1; 6]);
        let probs = m.score_a(&ctx, &e_u, &e_i, &e_p).value();
        let logits = m.logit_a(&ctx, &e_u, &e_i, &e_p).value();
        assert!(probs.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        for a in 0..6 {
            for b in 0..6 {
                let p_ord = probs.get(a, 0) > probs.get(b, 0);
                let l_ord = logits.get(a, 0) > logits.get(b, 0);
                assert_eq!(p_ord, l_ord, "sigmoid must preserve ordering");
            }
        }
    }

    #[test]
    fn scores_discriminate_between_candidates() {
        let (m, _) = model(MgbrVariant::Full);
        let scorer = m.scorer();
        let items: Vec<u32> = (0..10).collect();
        let s = scorer.score_items(3, &items);
        let min = s.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max > min, "untrained model should still vary across items");
    }

    #[test]
    fn scoring_is_deterministic() {
        let (m, _) = model(MgbrVariant::Full);
        let scorer = m.scorer();
        let items: Vec<u32> = (5..15).collect();
        assert_eq!(scorer.score_items(2, &items), scorer.score_items(2, &items));
    }

    #[test]
    fn every_variant_builds_and_scores() {
        for v in MgbrVariant::all() {
            let (m, _) = model(v);
            let scorer = m.scorer();
            assert_eq!(scorer.name(), v.label());
            let s = scorer.score_items(1, &[0, 1, 2]);
            assert!(s.iter().all(|x| x.is_finite()), "{v:?}");
            let sp = scorer.score_participants(1, 0, &[2, 3]);
            assert!(sp.iter().all(|x| x.is_finite()), "{v:?}");
        }
    }

    #[test]
    fn variant_param_counts_ordered() {
        let full = model(MgbrVariant::Full).0.param_count();
        let m = model(MgbrVariant::NoShared).0.param_count();
        let g = model(MgbrVariant::GenericGates).0.param_count();
        let r = model(MgbrVariant::NoAux).0.param_count();
        assert!(m < full);
        assert!(g < full);
        assert_eq!(
            r, full,
            "MGBR-R only changes the loss, not the architecture"
        );
    }

    #[test]
    fn mean_tile_cache_never_changes_scores() {
        // The cached tile is hit three ways — growth (n larger than the
        // cache), exact match (same n again), and shrink (n smaller than
        // the cache) — and every path must return bitwise-identical
        // scores to an uncached scorer.
        let (m, _) = model(MgbrVariant::Full);
        let cached = m.scorer();
        let items_small: Vec<u32> = (0..4).collect();
        let items_large: Vec<u32> = (0..12).collect();

        let grow = cached.score_items(1, &items_large);
        let exact = cached.score_items(1, &items_large);
        let shrink = cached.score_items(1, &items_small);

        let fresh = m.scorer();
        let ref_large = fresh.score_items(1, &items_large);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&grow), bits(&ref_large));
        assert_eq!(bits(&exact), bits(&ref_large));
        assert_eq!(bits(&shrink), bits(&ref_large[..4]));
    }

    #[test]
    fn score_both_heads_agree_with_individual_paths() {
        let (m, _) = model(MgbrVariant::Full);
        let ctx = StepCtx::new(&m.store);
        let emb = m.embeddings(&ctx);
        let e_u = gather(&emb.users, vec![0, 1]);
        let e_i = gather(&emb.items, vec![0, 1]);
        let e_p = gather(&emb.participants, vec![2, 3]);
        let (sa, sb) = m.score_both(&ctx, &e_u, &e_i, &e_p);
        let sa2 = m.score_a(&ctx, &e_u, &e_i, &e_p);
        let sb2 = m.score_b(&ctx, &e_u, &e_i, &e_p);
        assert_eq!(sa.value(), sa2.value());
        assert_eq!(sb.value(), sb2.value());
    }

    #[test]
    fn pruned_single_head_plans_keep_the_full_mtl_prefix() {
        // The layer trace ranges computed for the full score plan must
        // stay valid on the pruned per-head plans: identical ops through
        // the last MTL op.
        let (m, _) = model(MgbrVariant::Full);
        let mtl_end = m.score.layers.last().unwrap().ops.end;
        assert_eq!(&m.plan_a.ops[..mtl_end], &m.score.plan.ops[..mtl_end]);
        assert_eq!(&m.plan_b.ops[..mtl_end], &m.score.plan.ops[..mtl_end]);
        assert!(m.plan_a.ops.len() < m.score.plan.ops.len());
    }
}
