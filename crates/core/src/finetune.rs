//! Incremental fine-tuning: short training rounds on fresh deal groups.
//!
//! The online loop's model-update half. A fine-tune round is one epoch
//! of the ordinary joint objective (Eq. 25) restricted to a mini-batch
//! of *fresh* groups — the deal groups that arrived after the temporal
//! boundary — with the cumulative dataset as the negativity reference.
//! Everything rides on [`crate::train`], so a fine-tune run inherits
//! the full training contract for free:
//!
//! * **deterministic** — bitwise-identical losses and parameters at any
//!   thread count;
//! * **resumable** — with [`FineTuneConfig::checkpoint_path`] set, an
//!   interrupted run restarts from its v2 checkpoint and reaches
//!   bitwise-identical parameters (pinned by `tests/online_loop.rs`);
//! * **recoverable** — the watchdog screens every step, and an anomaly
//!   rolls back to the last round boundary (`MemorySnapshot`) with LR
//!   backoff before failing closed with [`TrainError::Diverged`].
//!
//! [`warm_start`] seeds the trainer from the *offline* run's checkpoint
//! (parameters only — the offline `TrainConfig` fingerprint does not
//! gate it, since a fine-tune config is legitimately different).
//!
//! The trainer's graphs and id spaces are fixed at construction, so
//! fresh groups must stay inside the base model's id space; groups that
//! reference cold entities are served through the frozen artifact's
//! fold-in path instead ([`crate::FrozenModel::fold_in_user`]) until a
//! full retrain absorbs them.

use std::path::PathBuf;

use mgbr_data::{DataSplit, Dataset, DealGroup};
use mgbr_nn::checkpoint::load_checkpoint_from_file;

use crate::watchdog::{TrainError, WatchdogConfig};
use crate::{train, Mgbr, TrainConfig, TrainReport};

/// Configuration of one incremental fine-tune run.
///
/// The fields that feed the checkpoint fingerprint (`lr`, `batch_size`,
/// `n_neg`, `grad_clip`, `seed`) must stay fixed across interrupted
/// segments of the same run — exactly the [`TrainConfig`] contract.
/// `rounds` (like `epochs`) is excluded, so a resumed run may extend
/// the budget.
#[derive(Debug, Clone)]
pub struct FineTuneConfig {
    /// Fine-tune rounds (epochs over the fresh-group mini-batch).
    pub rounds: usize,
    /// Learning rate — typically well below the offline rate, since the
    /// starting point is already converged.
    pub lr: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Negatives per positive.
    pub n_neg: usize,
    /// Global gradient-norm clip.
    pub grad_clip: Option<f32>,
    /// Sampling/shuffle seed. Drivers should derive a fresh seed per
    /// update cycle (e.g. `base ^ cycle`) so negatives vary.
    pub seed: u64,
    /// Kernel threads (0 = auto; `MGBR_THREADS` still overrides).
    pub threads: usize,
    /// Checkpoint cadence in rounds (0 = no checkpointing).
    pub checkpoint_every: usize,
    /// Checkpoint file for this fine-tune run.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from `checkpoint_path` when it exists.
    pub resume: bool,
    /// Anomaly monitoring (rollback + LR backoff on spikes).
    pub watchdog: WatchdogConfig,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        Self {
            rounds: 2,
            lr: 1e-3,
            batch_size: 64,
            n_neg: 4,
            grad_clip: Some(5.0),
            seed: 0x0417e,
            threads: 0,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume: false,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl FineTuneConfig {
    /// Lowers to the [`TrainConfig`] the round loop runs under.
    /// Per-round resampling is always on: each round re-draws negatives
    /// (seed offset by round index), which matters when the fresh set
    /// is small.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            lr: self.lr,
            batch_size: self.batch_size,
            epochs: self.rounds,
            n_neg: self.n_neg,
            grad_clip: self.grad_clip,
            seed: self.seed,
            resample_per_epoch: true,
            adam_warm_restarts: false,
            threads: self.threads,
            checkpoint_every: self.checkpoint_every,
            checkpoint_path: self.checkpoint_path.clone(),
            resume: self.resume,
            watchdog: self.watchdog.clone(),
            numeric_fault: None,
            trace_path: None,
        }
    }
}

/// Loads **parameters** from a v2 checkpoint into the model — the warm
/// start for incremental fine-tuning from an offline training run. The
/// checkpoint's training state (optimizer moments, RNG, epoch counters)
/// is deliberately ignored: a fine-tune run is a new optimization under
/// its own config, not a continuation of the offline one.
///
/// # Errors
///
/// [`TrainError::Checkpoint`] when the file is missing, corrupt, or
/// shaped for a different model (transactional: the model is never
/// partially mutated).
pub fn warm_start(model: &mut Mgbr, path: impl AsRef<std::path::Path>) -> Result<(), TrainError> {
    let _loaded = load_checkpoint_from_file(&mut model.store, path.as_ref())?;
    Ok(())
}

/// Runs `cfg.rounds` fine-tune rounds on `fresh` deal groups.
///
/// `full` is the cumulative dataset (base + stream so far) used only as
/// the negativity reference; its id spaces must match the model's.
///
/// # Errors
///
/// [`TrainError::ConfigMismatch`] when `fresh` is empty, references
/// entities outside the model's id space, or `full`'s id spaces
/// disagree with the model; otherwise as [`train`].
pub fn fine_tune(
    model: &mut Mgbr,
    full: &Dataset,
    fresh: &[DealGroup],
    cfg: &FineTuneConfig,
) -> Result<TrainReport, TrainError> {
    if fresh.is_empty() {
        return Err(TrainError::ConfigMismatch(
            "fine-tune requires at least one fresh group".into(),
        ));
    }
    if full.n_users != model.n_users() || full.n_items != model.n_items() {
        return Err(TrainError::ConfigMismatch(format!(
            "negativity reference is {}x{} (users x items) but the model was built for {}x{} — \
             fine-tuning cannot grow the trainer's id space (fold cold entities into the frozen \
             artifact instead)",
            full.n_users,
            full.n_items,
            model.n_users(),
            model.n_items()
        )));
    }
    for (i, g) in fresh.iter().enumerate() {
        let in_space = (g.initiator as usize) < model.n_users()
            && (g.item as usize) < model.n_items()
            && g.participants
                .iter()
                .all(|&p| (p as usize) < model.n_users());
        if !in_space {
            return Err(TrainError::ConfigMismatch(format!(
                "fresh group {i} references entities outside the model's id space \
                 ({}x{}) — fold them into the frozen artifact instead",
                model.n_users(),
                model.n_items()
            )));
        }
    }
    let split = DataSplit {
        n_users: full.n_users,
        n_items: full.n_items,
        train: fresh.to_vec(),
        val: Vec::new(),
        test: Vec::new(),
    };
    train(model, full, &split, &cfg.train_config())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MgbrConfig, TrainError};
    use mgbr_data::{synthetic, temporal_split, SyntheticConfig};

    fn fixture() -> (Dataset, Vec<DealGroup>, Mgbr) {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        // Keep everything in one id space: split temporally but train
        // the base model on the full id space so all tail groups are
        // fine-tunable.
        let split = temporal_split(&ds, 0.7);
        let base = Dataset::new(ds.n_users, ds.n_items, split.train.clone());
        let model = Mgbr::new(MgbrConfig::tiny(), &base);
        (ds, split.tail, model)
    }

    #[test]
    fn fine_tune_improves_loss_and_is_deterministic() {
        let (ds, tail, mut model) = fixture();
        let cfg = FineTuneConfig {
            rounds: 3,
            ..FineTuneConfig::default()
        };
        let (_, _, mut twin) = fixture(); // identical seed/config/graphs
        let report = fine_tune(&mut model, &ds, &tail, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "fine-tune loss should fall: {:?}",
            report.epoch_losses
        );
        let r2 = fine_tune(&mut twin, &ds, &tail, &cfg).unwrap();
        assert_eq!(report.epoch_losses, r2.epoch_losses);
    }

    #[test]
    fn empty_fresh_set_is_rejected() {
        let (ds, _tail, mut model) = fixture();
        let err = fine_tune(&mut model, &ds, &[], &FineTuneConfig::default()).unwrap_err();
        assert!(matches!(err, TrainError::ConfigMismatch(_)), "{err}");
    }

    #[test]
    fn out_of_space_groups_are_rejected() {
        let (ds, _tail, mut model) = fixture();
        let alien = vec![DealGroup::new(0, model.n_items() as u32, vec![1])];
        let wide = Dataset::new(ds.n_users, ds.n_items + 1, alien.clone());
        let err = fine_tune(&mut model, &wide, &alien, &FineTuneConfig::default()).unwrap_err();
        assert!(err.to_string().contains("id space"), "{err}");
        // Even with matching reference dims, an out-of-space group fails.
        let err2 = fine_tune(&mut model, &ds, &alien, &FineTuneConfig::default()).unwrap_err();
        assert!(matches!(err2, TrainError::ConfigMismatch(_)), "{err2}");
    }

    #[test]
    fn warm_start_restores_checkpoint_parameters() {
        let (ds, tail, mut model) = fixture();
        let dir = std::env::temp_dir().join(format!("mgbr_warm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("offline.ckpt");
        let cfg = FineTuneConfig {
            rounds: 1,
            checkpoint_every: 1,
            checkpoint_path: Some(ckpt.clone()),
            ..FineTuneConfig::default()
        };
        fine_tune(&mut model, &ds, &tail, &cfg).unwrap();
        let tuned: Vec<f32> = model
            .store
            .iter()
            .flat_map(|(_, _, t)| t.as_slice().to_vec())
            .collect();
        let mut fresh = Mgbr::new(MgbrConfig::tiny(), &ds);
        warm_start(&mut fresh, &ckpt).unwrap();
        let restored: Vec<f32> = fresh
            .store
            .iter()
            .flat_map(|(_, _, t)| t.as_slice().to_vec())
            .collect();
        assert_eq!(
            tuned, restored,
            "warm start must restore parameters bitwise"
        );
        assert!(warm_start(&mut fresh, dir.join("missing.ckpt")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
