//! The shared baseline interface, two-task training loop, and frozen
//! evaluation scorer.

use mgbr_autograd::{Tape, Var};
use mgbr_core::{TrainConfig, TrainReport};
use mgbr_data::{BatchIter, DataSplit, Dataset, Sampler, TaskAInstance, TaskBInstance};
use mgbr_eval::{EpochTimer, GroupBuyScorer};
use mgbr_nn::{bpr_loss, Adam, Optimizer, ParamStore, StepCtx};
use mgbr_tensor::{configure_threads, Pcg32, Tensor};

/// Hyper-parameters shared by all baselines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Final embedding width used for dot-product scoring.
    pub d: usize,
    /// Propagation / tower depth (meaning is model-specific).
    pub layers: usize,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl BaselineConfig {
    /// The reproduction scale used by the experiment harness (matching
    /// MGBR's `2d`-wide object embeddings for a fair comparison).
    pub fn repro_scale() -> Self {
        Self {
            d: 32,
            layers: 2,
            seed: 42,
        }
    }

    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            d: 8,
            layers: 2,
            seed: 42,
        }
    }
}

/// Full-matrix embeddings produced by one baseline forward pass.
pub struct EmbedOut {
    /// User embeddings used for Task A scoring (`|U| × d`).
    pub users_a: Var,
    /// Item embeddings (`|I| × d`).
    pub items: Var,
    /// User embeddings used for the user-user inner product of Task B
    /// (`|U| × d`; often identical to `users_a`).
    pub users_b: Var,
}

/// A recommendation baseline: everything model-specific is how the
/// embedding matrices are computed.
pub trait Baseline {
    /// Model name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// The parameter store.
    fn store(&self) -> &ParamStore;

    /// Mutable parameter store (for the optimizer).
    fn store_mut(&mut self) -> &mut ParamStore;

    /// Computes the full embedding matrices on this step's tape.
    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut;

    /// Total trainable scalars.
    fn param_count(&self) -> usize {
        self.store().scalar_count()
    }
}

fn gather(emb: &Var, idx: Vec<usize>) -> Var {
    emb.gather_rows(std::rc::Rc::new(idx))
}

/// Task A BPR loss: dot-product pairwise ranking over the instances.
fn a_loss(emb: &EmbedOut, batch: &[&TaskAInstance]) -> Var {
    let n = batch.len();
    let k = batch[0].neg_items.len();
    let mut users = Vec::with_capacity(n * k);
    let mut pos = Vec::with_capacity(n * k);
    let mut neg = Vec::with_capacity(n * k);
    for inst in batch {
        for &ni in &inst.neg_items {
            users.push(inst.user as usize);
            pos.push(inst.pos_item as usize);
            neg.push(ni as usize);
        }
    }
    let e_u = gather(&emb.users_a, users);
    let s_pos = e_u.rowwise_dot(&gather(&emb.items, pos));
    let s_neg = e_u.rowwise_dot(&gather(&emb.items, neg));
    bpr_loss(&s_pos, &s_neg)
}

/// Task B BPR loss: user-user inner product ranking (the paper's
/// tailoring of the baselines).
fn b_loss(emb: &EmbedOut, batch: &[&TaskBInstance]) -> Var {
    let n = batch.len();
    let k = batch[0].neg_participants.len();
    let mut users = Vec::with_capacity(n * k);
    let mut pos = Vec::with_capacity(n * k);
    let mut neg = Vec::with_capacity(n * k);
    for inst in batch {
        for &np in &inst.neg_participants {
            users.push(inst.user as usize);
            pos.push(inst.pos_participant as usize);
            neg.push(np as usize);
        }
    }
    let e_u = gather(&emb.users_b, users);
    let s_pos = e_u.rowwise_dot(&gather(&emb.users_b, pos));
    let s_neg = e_u.rowwise_dot(&gather(&emb.users_b, neg));
    bpr_loss(&s_pos, &s_neg)
}

/// Trains a baseline on both sub-tasks simultaneously with BPR + Adam.
///
/// Mirrors the MGBR trainer's protocol (per-epoch negative resampling,
/// shuffled minibatches, gradient clipping) so Table III comparisons are
/// apples-to-apples.
///
/// # Panics
///
/// Panics if the training partition is empty or training diverges.
pub fn train_baseline<M: Baseline>(
    model: &mut M,
    full: &Dataset,
    split: &DataSplit,
    tc: &TrainConfig,
) -> TrainReport {
    assert!(!split.train.is_empty(), "empty training partition");
    configure_threads(tc.threads);
    let mut adam = Adam::with_lr(tc.lr);
    let mut rng = Pcg32::seed_from_u64(tc.seed);
    // One tape for the whole run: step storage is recycled through its
    // workspace instead of reallocated (see mgbr-autograd's engine docs).
    let tape = Tape::new();
    let mut timer = EpochTimer::new();
    let mut epoch_losses = Vec::with_capacity(tc.epochs);
    let mut steps = 0usize;

    for epoch in 0..tc.epochs {
        let mut sampler = Sampler::new(full, tc.seed.wrapping_add(epoch as u64));
        let task_a = sampler.task_a_instances(&split.train, tc.n_neg);
        let task_b = sampler.task_b_instances(&split.train, tc.n_neg);

        timer.start_epoch();
        let a_batches: Vec<Vec<usize>> =
            BatchIter::new(task_a.len(), tc.batch_size, &mut rng).collect();
        let b_batches: Vec<Vec<usize>> =
            BatchIter::new(task_b.len(), tc.batch_size, &mut rng).collect();
        let n_steps = a_batches.len().max(b_batches.len()).max(1);

        let mut loss_sum = 0.0f64;
        for step in 0..n_steps {
            let batch_a: Vec<&TaskAInstance> = a_batches[step % a_batches.len()]
                .iter()
                .map(|&j| &task_a[j])
                .collect();
            let batch_b: Vec<&TaskBInstance> = if b_batches.is_empty() {
                Vec::new()
            } else {
                b_batches[step % b_batches.len()]
                    .iter()
                    .map(|&j| &task_b[j])
                    .collect()
            };

            let ctx = StepCtx::with_tape(&tape, model.store());
            let emb = model.embed(&ctx);
            let mut total = a_loss(&emb, &batch_a);
            if !batch_b.is_empty() {
                total = total.add(&b_loss(&emb, &batch_b));
            }
            loss_sum += total.value().scalar() as f64;
            let mut grads = ctx.backward(&total);
            if let Some(clip) = tc.grad_clip {
                grads.clip_global_norm(clip);
            }
            drop(ctx);
            adam.step(model.store_mut(), &grads);
        }
        timer.end_epoch();
        steps += n_steps;
        let mean = (loss_sum / n_steps as f64) as f32;
        epoch_losses.push(mean);
        assert!(
            model.store().all_finite(),
            "{} diverged at epoch {epoch} (loss {mean})",
            model.name()
        );
    }
    TrainReport {
        epoch_losses,
        epoch_secs: timer.all().to_vec(),
        param_count: model.param_count(),
        steps,
        recoveries: 0,
        anomalies: Vec::new(),
    }
}

/// A frozen baseline ready for ranking evaluation.
pub struct BaselineScorer {
    name: &'static str,
    users_a: Tensor,
    items: Tensor,
    users_b: Tensor,
}

impl BaselineScorer {
    /// Freezes the baseline's current parameters into embedding matrices.
    pub fn freeze<M: Baseline>(model: &M) -> Self {
        let ctx = StepCtx::new(model.store());
        let emb = model.embed(&ctx);
        Self {
            name: model.name(),
            users_a: emb.users_a.value(),
            items: emb.items.value(),
            users_b: emb.users_b.value(),
        }
    }

    /// The frozen Task-B user embedding matrix (used by Fig. 6 tooling).
    pub fn user_embeddings(&self) -> &Tensor {
        &self.users_b
    }
}

impl GroupBuyScorer for BaselineScorer {
    fn score_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let u = self.users_a.row(user as usize);
        items
            .iter()
            .map(|&i| {
                self.items
                    .row(i as usize)
                    .iter()
                    .zip(u)
                    .map(|(&iv, &uv)| iv * uv)
                    .sum()
            })
            .collect()
    }

    fn score_participants(&self, user: u32, _item: u32, candidates: &[u32]) -> Vec<f32> {
        let u = self.users_b.row(user as usize);
        candidates
            .iter()
            .map(|&p| {
                self.users_b
                    .row(p as usize)
                    .iter()
                    .zip(u)
                    .map(|(&pv, &uv)| pv * uv)
                    .sum()
            })
            .collect()
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use mgbr_data::{split_dataset, synthetic, SyntheticConfig};
    use mgbr_eval::{evaluate_task_a, evaluate_task_b};

    /// Shared smoke test: a baseline must build, train without
    /// divergence, reduce its loss, and beat random ranking on Task A.
    pub fn exercise_baseline<M: Baseline>(mut model: M, expected_name: &str) {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
        assert_eq!(model.name(), expected_name);
        assert!(model.param_count() > 0);

        let tc = TrainConfig {
            epochs: 5,
            lr: 1e-2,
            batch_size: 64,
            n_neg: 4,
            ..TrainConfig::tiny()
        };
        let report = train_baseline(&mut model, &ds, &split, &tc);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(
            report.epoch_losses.last().unwrap() < &report.epoch_losses[0],
            "{expected_name} loss should decrease: {:?}",
            report.epoch_losses
        );

        let scorer = BaselineScorer::freeze(&model);
        let mut sampler = Sampler::new(&ds, 99);
        let test_a = sampler.task_a_instances(&split.test, 9);
        let test_b = sampler.task_b_instances(&split.test, 9);
        let ma = evaluate_task_a(&scorer, &test_a, 10);
        let mb = evaluate_task_b(&scorer, &test_b, 10);
        assert!(
            ma.mrr > 0.30,
            "{expected_name} Task A mrr {} should beat random (~0.29)",
            ma.mrr
        );
        // Task B is hard for tailored baselines (the paper's core claim);
        // require only sanity, not strength.
        assert!(
            mb.mrr > 0.15,
            "{expected_name} Task B mrr {} degenerate",
            mb.mrr
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_defaults() {
        let c = BaselineConfig::repro_scale();
        assert_eq!(c.d, 32);
        assert!(BaselineConfig::tiny().d < c.d);
    }
}
