//! EATNN (Chen et al., 2019): efficient adaptive transfer — each user
//! holds item-domain, social-domain, and shared embeddings, and attention
//! gates decide per user how much shared knowledge migrates into each
//! domain.

use mgbr_autograd::Var;
use mgbr_data::Dataset;
use mgbr_nn::{Embedding, Linear, ParamStore, StepCtx};
use mgbr_tensor::{Pcg32, Tensor};

use crate::{Baseline, BaselineConfig, EmbedOut};

/// Attention-gated adaptive-transfer recommender.
///
/// The three-embeddings-per-user design is why EATNN tops the paper's
/// parameter-count table (Table V) despite its cheap attention/MLP
/// operations.
pub struct Eatnn {
    store: ParamStore,
    /// Item-domain user embeddings `P`.
    user_item_domain: Embedding,
    /// Social-domain user embeddings `S`.
    user_social_domain: Embedding,
    /// Domain-shared user embeddings `C`.
    user_shared: Embedding,
    items: Embedding,
    /// Gate producing the item-domain transfer weights from `P ‖ C`.
    gate_item: Linear,
    /// Gate producing the social-domain transfer weights from `S ‖ C`.
    gate_social: Linear,
}

impl Eatnn {
    /// Registers the three user tables, the item table, and both gates.
    pub fn new(cfg: &BaselineConfig, train: &Dataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let mk = |store: &mut ParamStore, rng: &mut Pcg32, name: &str, n: usize| {
            Embedding::new(store, rng, name, n, cfg.d, 0.1)
        };
        let user_item_domain = mk(&mut store, &mut rng, "eatnn.p", train.n_users);
        let user_social_domain = mk(&mut store, &mut rng, "eatnn.s", train.n_users);
        let user_shared = mk(&mut store, &mut rng, "eatnn.c", train.n_users);
        let items = mk(&mut store, &mut rng, "eatnn.items", train.n_items);
        let gate_item = Linear::new(
            &mut store,
            &mut rng,
            "eatnn.gate_item",
            2 * cfg.d,
            cfg.d,
            true,
        );
        let gate_social = Linear::new(
            &mut store,
            &mut rng,
            "eatnn.gate_social",
            2 * cfg.d,
            cfg.d,
            true,
        );
        Self {
            store,
            user_item_domain,
            user_social_domain,
            user_shared,
            items,
            gate_item,
            gate_social,
        }
    }

    /// `a ⊙ x + (1 - a) ⊙ c` with `a = σ(gate(x ‖ c))` — the adaptive
    /// transfer unit.
    fn transfer(&self, ctx: &StepCtx<'_>, gate: &Linear, domain: &Var, shared: &Var) -> Var {
        let a = gate
            .forward(ctx, &Var::concat_cols(&[domain, shared]))
            .sigmoid();
        let ones = ctx.constant(Tensor::ones(a.rows(), a.cols()));
        let inv = ones.sub(&a);
        a.mul(domain).add(&inv.mul(shared))
    }
}

impl Baseline for Eatnn {
    fn name(&self) -> &'static str {
        "EATNN"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut {
        let p = self.user_item_domain.full(ctx);
        let s = self.user_social_domain.full(ctx);
        let c = self.user_shared.full(ctx);
        // Item-domain representation scores Task A; social-domain
        // representation carries the user-user similarity of Task B.
        let users_a = self.transfer(ctx, &self.gate_item, &p, &c);
        let users_b = self.transfer(ctx, &self.gate_social, &s, &c);
        EmbedOut {
            users_a,
            items: self.items.full(ctx),
            users_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::exercise_baseline;
    use mgbr_data::{synthetic, SyntheticConfig};

    #[test]
    fn eatnn_has_three_user_tables() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let cfg = BaselineConfig::tiny();
        let m = Eatnn::new(&cfg, &ds);
        let user_tables = 3 * ds.n_users * cfg.d;
        let item_table = ds.n_items * cfg.d;
        assert!(m.param_count() > user_tables + item_table);
    }

    #[test]
    fn eatnn_domains_specialize() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let m = Eatnn::new(&BaselineConfig::tiny(), &ds);
        let ctx = StepCtx::new(m.store());
        let emb = m.embed(&ctx);
        assert_ne!(
            emb.users_a.value(),
            emb.users_b.value(),
            "item-domain and social-domain user representations must differ"
        );
    }

    #[test]
    fn eatnn_trains_and_ranks() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        exercise_baseline(Eatnn::new(&BaselineConfig::tiny(), &ds), "EATNN");
    }
}
