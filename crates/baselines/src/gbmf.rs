//! GBMF (Zhang et al., 2021): the matrix-factorization variant of GBGCN —
//! free user/item latent factors scored by dot product, with embeddings
//! updated directly by the ranking losses.

use mgbr_data::Dataset;
use mgbr_nn::{Embedding, ParamStore, StepCtx};
use mgbr_tensor::Pcg32;

use crate::{Baseline, BaselineConfig, EmbedOut};

/// Dot-product matrix factorization over the shared user set.
pub struct Gbmf {
    store: ParamStore,
    users: Embedding,
    items: Embedding,
}

impl Gbmf {
    /// Registers the factor tables.
    pub fn new(cfg: &BaselineConfig, train: &Dataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let users = Embedding::new(
            &mut store,
            &mut rng,
            "gbmf.users",
            train.n_users,
            cfg.d,
            0.1,
        );
        let items = Embedding::new(
            &mut store,
            &mut rng,
            "gbmf.items",
            train.n_items,
            cfg.d,
            0.1,
        );
        Self {
            store,
            users,
            items,
        }
    }
}

impl Baseline for Gbmf {
    fn name(&self) -> &'static str {
        "GBMF"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut {
        let users = self.users.full(ctx);
        EmbedOut {
            users_a: users.clone(),
            items: self.items.full(ctx),
            users_b: users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::exercise_baseline;
    use mgbr_data::{synthetic, SyntheticConfig};

    #[test]
    fn gbmf_param_count_is_pure_tables() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let cfg = BaselineConfig::tiny();
        let m = Gbmf::new(&cfg, &ds);
        assert_eq!(m.param_count(), (ds.n_users + ds.n_items) * cfg.d);
    }

    #[test]
    fn gbmf_trains_and_ranks() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        exercise_baseline(Gbmf::new(&BaselineConfig::tiny(), &ds), "GBMF");
    }
}
