//! DiffNet (Wu et al., 2019): social recommendation via layered influence
//! diffusion — user representations repeatedly aggregate their social
//! neighbors' representations, then fuse with the user's historical item
//! interests.

use std::rc::Rc;

use mgbr_data::Dataset;
use mgbr_graph::Csr;
use mgbr_nn::{Embedding, Linear, ParamStore, StepCtx};
use mgbr_tensor::Pcg32;

use crate::{Baseline, BaselineConfig, EmbedOut};

/// Social influence-diffusion recommender.
///
/// The social graph comes from the initiator-participant co-occurrence
/// edges of the training deal groups — the paper's point that these
/// "social" links are really co-preference links is exactly what this
/// baseline then suffers from (Table III's DiffNet row).
pub struct DiffNet {
    store: ParamStore,
    user_free: Embedding,
    items: Embedding,
    diffusion: Vec<Linear>,
    social: Rc<Csr>,
    /// Row-normalized user → interacted-items matrix for interest fusion.
    interest: Rc<Csr>,
}

impl DiffNet {
    /// Builds the social and interest graphs and registers parameters.
    pub fn new(cfg: &BaselineConfig, train: &Dataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let social =
            Rc::new(Csr::undirected_adjacency(train.n_users, &train.up_edges()).sym_normalized());
        // Row-stochastic user→item interest aggregation.
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        for (u, i) in train.ui_edges().into_iter().chain(train.pi_edges()) {
            triplets.push((u, i, 1.0));
        }
        let raw = Csr::from_triplets(train.n_users, train.n_items, &triplets);
        let sums = raw.row_sums();
        let normalized: Vec<(usize, usize, f32)> = (0..train.n_users)
            .flat_map(|u| {
                let s = sums[u].max(1.0);
                raw.row(u)
                    .map(move |(i, v)| (u, i, v / s))
                    .collect::<Vec<_>>()
            })
            .collect();
        let interest = Rc::new(Csr::from_triplets(
            train.n_users,
            train.n_items,
            &normalized,
        ));

        let user_free = Embedding::new(
            &mut store,
            &mut rng,
            "diffnet.users",
            train.n_users,
            cfg.d,
            0.1,
        );
        let items = Embedding::new(
            &mut store,
            &mut rng,
            "diffnet.items",
            train.n_items,
            cfg.d,
            0.1,
        );
        let diffusion = (0..cfg.layers)
            .map(|l| {
                Linear::new(
                    &mut store,
                    &mut rng,
                    &format!("diffnet.l{l}"),
                    cfg.d,
                    cfg.d,
                    true,
                )
            })
            .collect();
        Self {
            store,
            user_free,
            items,
            diffusion,
            social,
            interest,
        }
    }
}

impl Baseline for DiffNet {
    fn name(&self) -> &'static str {
        "DiffNet"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut {
        let items = self.items.full(ctx);
        // Influence diffusion: h^{l+1} = σ(W(Â_social h^l)) + h^l.
        let mut h = self.user_free.full(ctx);
        for layer in &self.diffusion {
            let diffused = layer.forward(ctx, &h.spmm_sym(&self.social)).sigmoid();
            h = diffused.add(&h);
        }
        // Interest fusion: final user = diffused social state + mean of
        // historically interacted items (DiffNet's u* = h^L + Σ r_i / |R|).
        let interest = items.spmm(&self.interest);
        let users = h.add(&interest);
        EmbedOut {
            users_a: users.clone(),
            items,
            users_b: users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::exercise_baseline;
    use mgbr_data::{synthetic, SyntheticConfig};

    #[test]
    fn diffnet_embeds_with_social_signal() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let cfg = BaselineConfig::tiny();
        let m = DiffNet::new(&cfg, &ds);
        let ctx = StepCtx::new(m.store());
        let emb = m.embed(&ctx);
        assert_eq!(emb.users_a.rows(), ds.n_users);
        assert_eq!(emb.users_a.cols(), cfg.d);
        assert!(emb.users_a.value().all_finite());
    }

    #[test]
    fn diffnet_trains_and_ranks() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        exercise_baseline(DiffNet::new(&BaselineConfig::tiny(), &ds), "DiffNet");
    }
}
