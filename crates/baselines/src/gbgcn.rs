//! GBGCN (Zhang et al., 2021): group-buying GCN — the closest prior work.
//! Users keep *role-separated* representations learned by embedding
//! propagation on an initiator-view and a participant-view graph, with
//! social influence propagated over the initiator-participant graph.

use std::rc::Rc;

use mgbr_autograd::Var;
use mgbr_data::Dataset;
use mgbr_graph::{Csr, GraphViews};
use mgbr_nn::{Embedding, Linear, ParamStore, StepCtx};
use mgbr_tensor::Pcg32;

use crate::{Baseline, BaselineConfig, EmbedOut};

/// One view's propagation stack.
struct ViewGcn {
    e0: Embedding,
    weights: Vec<Linear>,
    adj: Rc<Csr>,
}

impl ViewGcn {
    fn new(
        store: &mut ParamStore,
        rng: &mut Pcg32,
        name: &str,
        adj: Csr,
        n: usize,
        d: usize,
        layers: usize,
    ) -> Self {
        let e0 = Embedding::new(store, rng, &format!("{name}.e0"), n, d, 0.1);
        let weights = (0..layers)
            .map(|l| Linear::new(store, rng, &format!("{name}.w{l}"), d, d, false))
            .collect();
        Self {
            e0,
            weights,
            adj: Rc::new(adj),
        }
    }

    fn forward(&self, ctx: &StepCtx<'_>) -> Var {
        let mut e = self.e0.full(ctx);
        for w in &self.weights {
            // LightGCN-style propagation with a residual connection, as
            // GBGCN's embedding propagation network does.
            e = w
                .forward(ctx, &e.spmm_sym(&self.adj))
                .leaky_relu(0.2)
                .add(&e);
        }
        e
    }
}

/// Role-separated group-buying GCN.
pub struct Gbgcn {
    store: ParamStore,
    initiator_view: ViewGcn,
    participant_view: ViewGcn,
    social: Rc<Csr>,
    n_users: usize,
}

impl Gbgcn {
    /// Builds both role-view graphs plus the social graph.
    pub fn new(cfg: &BaselineConfig, train: &Dataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let views = GraphViews::build(
            train.n_users,
            train.n_items,
            &train.ui_edges(),
            &train.pi_edges(),
            &train.up_edges(),
        );
        let n = views.n_bipartite();
        let initiator_view = ViewGcn::new(
            &mut store,
            &mut rng,
            "gbgcn.init",
            views.a_ui,
            n,
            cfg.d,
            cfg.layers,
        );
        let participant_view = ViewGcn::new(
            &mut store,
            &mut rng,
            "gbgcn.part",
            views.a_pi,
            n,
            cfg.d,
            cfg.layers,
        );
        Self {
            store,
            initiator_view,
            participant_view,
            social: Rc::new(views.a_up),
            n_users: train.n_users,
        }
    }
}

impl Baseline for Gbgcn {
    fn name(&self) -> &'static str {
        "GBGCN"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut {
        let x_init = self.initiator_view.forward(ctx);
        let x_part = self.participant_view.forward(ctx);
        let user_rows: Rc<Vec<usize>> = Rc::new((0..self.n_users).collect());
        let item_rows: Rc<Vec<usize>> = Rc::new((self.n_users..x_init.rows()).collect());

        // Dual-role user representation.
        let u_roles = Var::concat_cols(&[
            &x_init.gather_rows(Rc::clone(&user_rows)),
            &x_part.gather_rows(user_rows),
        ]);
        // Social influence smoothing over the initiator-participant graph.
        let users = u_roles.spmm_sym(&self.social).add(&u_roles);
        let items = Var::concat_cols(&[
            &x_init.gather_rows(Rc::clone(&item_rows)),
            &x_part.gather_rows(item_rows),
        ]);
        EmbedOut {
            users_a: users.clone(),
            items,
            users_b: users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::exercise_baseline;
    use mgbr_data::{synthetic, SyntheticConfig};

    #[test]
    fn gbgcn_role_views_produce_dual_width() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let cfg = BaselineConfig::tiny();
        let m = Gbgcn::new(&cfg, &ds);
        let ctx = StepCtx::new(m.store());
        let emb = m.embed(&ctx);
        assert_eq!(
            emb.users_a.cols(),
            2 * cfg.d,
            "initiator ‖ participant roles"
        );
        assert_eq!(emb.items.cols(), 2 * cfg.d);
        assert_eq!(emb.users_a.rows(), ds.n_users);
    }

    #[test]
    fn gbgcn_trains_and_ranks() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        exercise_baseline(Gbgcn::new(&BaselineConfig::tiny(), &ds), "GBGCN");
    }
}
