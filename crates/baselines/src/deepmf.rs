//! DeepMF (Xue et al., 2017): deep matrix factorization — latent user and
//! item factors pushed through separate multi-layer non-linear projection
//! towers before dot-product scoring.

use mgbr_data::Dataset;
use mgbr_nn::{Activation, Embedding, Mlp, ParamStore, StepCtx};
use mgbr_tensor::Pcg32;

use crate::{Baseline, BaselineConfig, EmbedOut};

/// Dual-tower deep matrix factorization.
pub struct DeepMf {
    store: ParamStore,
    users: Embedding,
    items: Embedding,
    user_tower: Mlp,
    item_tower: Mlp,
}

impl DeepMf {
    /// Registers the factor tables and both projection towers.
    ///
    /// Tower depth follows `cfg.layers`; every hidden width equals `d`
    /// (the original uses shrinking widths over interaction-matrix rows —
    /// we keep the non-linear projection structure over learned factors,
    /// which is the tractable standard port).
    pub fn new(cfg: &BaselineConfig, train: &Dataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let users = Embedding::new(
            &mut store,
            &mut rng,
            "deepmf.users",
            train.n_users,
            cfg.d,
            0.1,
        );
        let items = Embedding::new(
            &mut store,
            &mut rng,
            "deepmf.items",
            train.n_items,
            cfg.d,
            0.1,
        );
        let dims = vec![cfg.d; cfg.layers + 1];
        let user_tower = Mlp::new(
            &mut store,
            &mut rng,
            "deepmf.utower",
            &dims,
            Activation::Relu,
            Activation::Identity,
        );
        let item_tower = Mlp::new(
            &mut store,
            &mut rng,
            "deepmf.itower",
            &dims,
            Activation::Relu,
            Activation::Identity,
        );
        Self {
            store,
            users,
            items,
            user_tower,
            item_tower,
        }
    }
}

impl Baseline for DeepMf {
    fn name(&self) -> &'static str {
        "DeepMF"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut {
        let users = self.user_tower.forward(ctx, &self.users.full(ctx));
        let items = self.item_tower.forward(ctx, &self.items.full(ctx));
        EmbedOut {
            users_a: users.clone(),
            items,
            users_b: users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::exercise_baseline;
    use mgbr_data::{synthetic, SyntheticConfig};

    #[test]
    fn deepmf_has_tower_parameters_beyond_tables() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let cfg = BaselineConfig::tiny();
        let m = DeepMf::new(&cfg, &ds);
        let tables = (ds.n_users + ds.n_items) * cfg.d;
        assert!(m.param_count() > tables, "towers must add parameters");
    }

    #[test]
    fn deepmf_trains_and_ranks() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        exercise_baseline(DeepMf::new(&BaselineConfig::tiny(), &ds), "DeepMF");
    }
}
