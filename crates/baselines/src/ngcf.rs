//! NGCF (Wang et al., 2019): neural graph collaborative filtering —
//! bi-interaction embedding propagation over the user-item interaction
//! graph, with per-layer outputs concatenated into the final
//! representation.

use std::rc::Rc;

use mgbr_autograd::Var;
use mgbr_data::Dataset;
use mgbr_graph::Csr;
use mgbr_nn::{Embedding, Linear, ParamStore, StepCtx};
use mgbr_tensor::Pcg32;

use crate::{Baseline, BaselineConfig, EmbedOut};

/// One NGCF propagation layer's weights (`W₁` for the aggregated message,
/// `W₂` for the bi-interaction term).
struct NgcfLayer {
    w1: Linear,
    w2: Linear,
}

/// Bi-interaction graph collaborative filtering.
///
/// Both initiator-item and participant-item interactions feed the graph —
/// NGCF has no role notion, so all user-item evidence is pooled (the
/// tailoring the paper applies when running NGCF on group-buying logs).
pub struct Ngcf {
    store: ParamStore,
    e0: Embedding,
    layers: Vec<NgcfLayer>,
    adj: Rc<Csr>,
    n_users: usize,
}

impl Ngcf {
    /// Builds the pooled interaction graph and registers parameters.
    pub fn new(cfg: &BaselineConfig, train: &Dataset) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Pcg32::seed_from_u64(cfg.seed);
        let n = train.n_users + train.n_items;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (u, i) in train.ui_edges().into_iter().chain(train.pi_edges()) {
            edges.push((u, train.n_users + i));
        }
        let adj = Rc::new(Csr::undirected_adjacency(n, &edges).sym_normalized());
        let e0 = Embedding::new(&mut store, &mut rng, "ngcf.e0", n, cfg.d, 0.1);
        let layers = (0..cfg.layers)
            .map(|l| NgcfLayer {
                w1: Linear::new(
                    &mut store,
                    &mut rng,
                    &format!("ngcf.l{l}.w1"),
                    cfg.d,
                    cfg.d,
                    true,
                ),
                w2: Linear::new(
                    &mut store,
                    &mut rng,
                    &format!("ngcf.l{l}.w2"),
                    cfg.d,
                    cfg.d,
                    true,
                ),
            })
            .collect();
        Self {
            store,
            e0,
            layers,
            adj,
            n_users: train.n_users,
        }
    }
}

impl Baseline for Ngcf {
    fn name(&self) -> &'static str {
        "NGCF"
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn embed(&self, ctx: &StepCtx<'_>) -> EmbedOut {
        let mut e = self.e0.full(ctx);
        let mut all_layers = vec![e.clone()];
        for layer in &self.layers {
            // e' = LeakyReLU(W₁(Â e) + W₂((Â e) ⊙ e))  — Eq. 7 of NGCF
            // with self-loops folded into Â.
            let agg = e.spmm_sym(&self.adj);
            let bi = agg.mul(&e);
            e = layer
                .w1
                .forward(ctx, &agg)
                .add(&layer.w2.forward(ctx, &bi))
                .leaky_relu(0.2);
            all_layers.push(e.clone());
        }
        let refs: Vec<&Var> = all_layers.iter().collect();
        let full = Var::concat_cols(&refs);

        let user_rows: Rc<Vec<usize>> = Rc::new((0..self.n_users).collect());
        let item_rows: Rc<Vec<usize>> = Rc::new((self.n_users..full.rows()).collect());
        let users = full.gather_rows(user_rows);
        let items = full.gather_rows(item_rows);
        EmbedOut {
            users_a: users.clone(),
            items,
            users_b: users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::exercise_baseline;
    use mgbr_data::{synthetic, SyntheticConfig};

    #[test]
    fn ngcf_concatenates_layer_outputs() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        let cfg = BaselineConfig::tiny();
        let m = Ngcf::new(&cfg, &ds);
        let ctx = StepCtx::new(m.store());
        let emb = m.embed(&ctx);
        assert_eq!(emb.users_a.cols(), cfg.d * (cfg.layers + 1));
        assert_eq!(emb.items.cols(), cfg.d * (cfg.layers + 1));
        assert_eq!(emb.users_a.rows(), ds.n_users);
    }

    #[test]
    fn ngcf_trains_and_ranks() {
        let ds = synthetic::generate(&SyntheticConfig::tiny());
        exercise_baseline(Ngcf::new(&BaselineConfig::tiny(), &ds), "NGCF");
    }
}
