//! # mgbr-baselines
//!
//! The six baselines the paper compares against (§III-B), each
//! re-implemented on the workspace substrate and tailored for *both*
//! group-buying sub-tasks exactly as the paper prescribes:
//!
//! * **Task A** is ordinary item recommendation — every baseline scores it
//!   with its native mechanism.
//! * **Task B** is scored as the inner product of the initiator's and the
//!   candidate participant's embeddings ("we can directly use the distance
//!   of p's embedding and u's embedding as `s(p|u,i)` … we used inner
//!   product").
//! * All baselines are trained on both tasks simultaneously (BPR on each),
//!   mirroring the paper's experimental setup.
//!
//! | Model | Signature mechanism kept in this port |
//! |---|---|
//! | [`DeepMf`]  | dual non-linear projection towers over latent factors |
//! | [`Ngcf`]    | bi-interaction embedding propagation over the user-item graph |
//! | [`DiffNet`] | layered social-influence diffusion over the user-user graph |
//! | [`Eatnn`]   | attentive adaptive transfer between item and social domains |
//! | [`Gbgcn`]   | role-separated (initiator/participant view) graph propagation |
//! | [`Gbmf`]    | plain dot-product matrix factorization |
//!
//! All models implement [`Baseline`]; [`train_baseline`] provides the
//! shared two-task BPR training loop and [`BaselineScorer`] the frozen
//! evaluation adapter implementing
//! [`mgbr_eval::GroupBuyScorer`].

mod common;
mod deepmf;
mod diffnet;
mod eatnn;
mod gbgcn;
mod gbmf;
mod ngcf;

pub use common::{train_baseline, Baseline, BaselineConfig, BaselineScorer, EmbedOut};
pub use deepmf::DeepMf;
pub use diffnet::DiffNet;
pub use eatnn::Eatnn;
pub use gbgcn::Gbgcn;
pub use gbmf::Gbmf;
pub use ngcf::Ngcf;
