//! Flight-recorder integration suite.
//!
//! Proves the observability layer's headline guarantees end to end:
//!
//! 1. **Read-only** — a traced training run produces bitwise-identical
//!    losses and final parameters to an untraced one, at any thread
//!    count.
//! 2. **Complete** — a traced run journals the whole span taxonomy:
//!    multiview forward, every MTL layer, loss forward, backward,
//!    optimizer step, checkpoint saves, and watchdog anomalies — as
//!    parseable JSONL plus a well-formed Chrome trace.
//! 3. **Provenance** — on resume, replayed validation metrics are tagged
//!    `replayed` both in the returned history and in the journal.
//!
//! Tracing is process-global (one active session at a time, serialized
//! by `mgbr-obs`), so tests in this binary that inspect journal contents
//! assert *inclusion* — a concurrently running traced test's events may
//! interleave — never exact file equality.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use mgbr_core::{train, train_with_validation, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{split_dataset, synthetic, DataSplit, Dataset, SyntheticConfig};
use mgbr_json::Json;
use mgbr_nn::NumericFault;

fn fixture() -> (Dataset, DataSplit) {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
    (ds, split)
}

fn params_of(model: &Mgbr) -> Vec<u32> {
    model
        .store
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        .collect()
}

/// A unique scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mgbr_obs_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parses every JSONL line of a journal (panicking on malformed lines).
fn read_journal(path: &Path) -> Vec<Json> {
    let text = std::fs::read_to_string(path).expect("read journal");
    text.lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect()
}

#[test]
fn tracing_is_bitwise_invisible_at_any_thread_count() {
    if std::env::var("MGBR_THREADS").is_ok() {
        return;
    }
    let (ds, split) = fixture();
    let dir = scratch("invisible");
    let run = |trace_path: Option<PathBuf>, threads: usize| {
        let tc = TrainConfig {
            epochs: 2,
            threads,
            trace_path,
            ..TrainConfig::tiny()
        };
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let report = train(&mut model, &ds, &split, &tc).unwrap();
        (report.epoch_losses, params_of(&model))
    };
    for threads in [1usize, 2, 4] {
        let (l_off, p_off) = run(None, threads);
        let (l_on, p_on) = run(Some(dir.join(format!("t{threads}.jsonl"))), threads);
        assert_eq!(
            l_off, l_on,
            "losses diverged under tracing at {threads} threads"
        );
        assert_eq!(
            p_off, p_on,
            "params diverged under tracing at {threads} threads"
        );
    }
    mgbr_tensor::set_threads(1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_run_covers_the_span_taxonomy() {
    let (ds, split) = fixture();
    let dir = scratch("taxonomy");
    let trace = dir.join("train.jsonl");
    let cfg = MgbrConfig::tiny();
    let tc = TrainConfig {
        epochs: 2,
        trace_path: Some(trace.clone()),
        // A poisoned parameter at step 1 provokes one watchdog
        // rollback, so anomaly + recovery events appear too.
        numeric_fault: Some(NumericFault::poison_param(1, 0, 0, f32::NAN)),
        ..TrainConfig::tiny().with_checkpointing(dir.join("obs.ckpt"), 1)
    };
    let mut model = Mgbr::new(cfg.clone(), &ds);
    let report = train(&mut model, &ds, &split, &tc).unwrap();
    assert_eq!(report.recoveries, 1, "fault must have fired");

    let records = read_journal(&trace);
    assert!(!records.is_empty());
    let mut names = BTreeSet::new();
    let mut mtl_layers = BTreeSet::new();
    for r in &records {
        // Every record carries the common schema fields.
        assert!(r.get("type").and_then(Json::as_str).is_some(), "{r:?}");
        assert!(r.get("ts_us").and_then(Json::as_f64).is_some(), "{r:?}");
        let name = r.get("name").and_then(Json::as_str).unwrap().to_string();
        if name == "mtl.layer" {
            let li = r
                .get("args")
                .and_then(|a| a.get("layer"))
                .and_then(Json::as_usize)
                .expect("mtl.layer carries its index");
            mtl_layers.insert(li);
        }
        names.insert(name);
    }
    for required in [
        "train.start",
        "epoch",
        "step",
        "multiview.forward",
        "mtl.layer",
        "loss.forward",
        "backward",
        "optimizer.step",
        "epoch.summary",
        "checkpoint.save",
        "watchdog.anomaly",
        "watchdog.recover",
        "metrics",
        // Per-op spans charged by the execution-plan interpreter: the
        // Full-variant forward exercises this op taxonomy every step.
        "plan.spmm",
        "plan.gemm",
        "plan.act",
        "plan.gather",
        "plan.concat",
        "plan.mix",
        "plan.add",
        "plan.scale",
        "plan.add_row_broadcast",
    ] {
        assert!(
            names.contains(required),
            "journal missing {required:?}: {names:?}"
        );
    }
    assert_eq!(
        mtl_layers,
        (0..cfg.mtl_layers).collect::<BTreeSet<_>>(),
        "every MTL layer must be journaled"
    );

    // The Chrome export is a well-formed trace-event document.
    let chrome = mgbr_obs::chrome_path_for(&trace);
    let doc = Json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("phase");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        match ph {
            "X" => assert!(e.get("dur").and_then(Json::as_f64).is_some()),
            "i" => assert_eq!(e.get("s").and_then(Json::as_str), Some("t")),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The journal records the watchdog anomaly exactly as the report does:
/// kind, step, and epoch round-trip, and the anomaly precedes its
/// recovery event.
#[test]
fn anomaly_report_round_trips_through_journal() {
    let (ds, split) = fixture();
    let dir = scratch("roundtrip");
    let trace = dir.join("anomaly.jsonl");
    let tc = TrainConfig {
        epochs: 2,
        trace_path: Some(trace.clone()),
        numeric_fault: Some(NumericFault::poison_gradient(2, 0, 0, f32::NAN)),
        ..TrainConfig::tiny()
    };
    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    let report = train(&mut model, &ds, &split, &tc).unwrap();
    assert_eq!(report.anomalies.len(), 1);
    let want = &report.anomalies[0];

    let records = read_journal(&trace);
    let anomaly_at = records
        .iter()
        .position(|r| {
            r.get("name").and_then(Json::as_str) == Some("watchdog.anomaly")
                && r.get("args")
                    .and_then(|a| a.get("step"))
                    .and_then(Json::as_usize)
                    == Some(want.step)
        })
        .expect("anomaly journaled");
    let args = records[anomaly_at].get("args").unwrap();
    assert_eq!(
        args.get("kind").and_then(Json::as_str),
        Some(want.kind.to_string().as_str())
    );
    assert_eq!(args.get("epoch").and_then(Json::as_usize), Some(want.epoch));
    assert_eq!(
        args.get("tensor").and_then(Json::as_str),
        want.tensor.as_deref()
    );
    let recover_at = records
        .iter()
        .position(|r| r.get("name").and_then(Json::as_str) == Some("watchdog.recover"))
        .expect("recovery journaled");
    assert!(anomaly_at < recover_at, "anomaly must precede its recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_tags_replayed_validation_metrics_in_history_and_journal() {
    let (ds, split) = fixture();
    let dir = scratch("replayed");
    let ckpt = dir.join("val.ckpt");
    let trace = dir.join("resume.jsonl");

    let tc_killed = TrainConfig {
        epochs: 2,
        ..TrainConfig::tiny().with_checkpointing(&ckpt, 1)
    };
    let mut victim = Mgbr::new(MgbrConfig::tiny(), &ds);
    train_with_validation(&mut victim, &ds, &split, &tc_killed, 50, 0.0).unwrap();

    let tc_resume = TrainConfig {
        epochs: 4,
        trace_path: Some(trace.clone()),
        ..TrainConfig::tiny().with_checkpointing(&ckpt, 1)
    };
    let mut resumed = Mgbr::new(MgbrConfig::tiny(), &ds);
    let (_, history) =
        train_with_validation(&mut resumed, &ds, &split, &tc_resume, 50, 0.0).unwrap();
    let flags: Vec<(usize, bool)> = history.iter().map(|e| (e.epoch, e.replayed)).collect();
    assert_eq!(flags, vec![(0, true), (1, true), (2, false), (3, false)]);

    // The journal carries the same provenance on its val.metric events.
    let journaled: Vec<(usize, bool)> = read_journal(&trace)
        .iter()
        .filter(|r| r.get("name").and_then(Json::as_str) == Some("val.metric"))
        .map(|r| {
            let a = r.get("args").unwrap();
            (
                a.get("epoch").and_then(Json::as_usize).unwrap(),
                a.get("replayed").and_then(Json::as_bool).unwrap(),
            )
        })
        .collect();
    assert_eq!(flags, journaled, "journal provenance must match history");
    let _ = std::fs::remove_dir_all(&dir);
}
