//! Serving resilience suite (ISSUE 8), driven by the chaos harness
//! (`mgbr_serve::chaos`): deadlines, SLO-aware shedding, artifact
//! hot-swap, and fault containment. The contracts under test:
//!
//! * **Exactly one reply** per admitted request — a score,
//!   [`ServeError::DeadlineExceeded`], or nothing was admitted
//!   ([`ServeError::Overloaded`]) — through stalls, worker death
//!   mid-batch, clock jumps, and hot-swaps.
//! * **Bitwise determinism** — Ok scores equal the single-threaded
//!   [`Scorer`] for the generation that produced them, at any worker
//!   count, before/during/after swaps.
//! * **Fail closed** — poisoned or incompatible artifacts are never
//!   published; malformed env knobs are typed errors, never silent
//!   defaults.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mgbr_core::{FrozenModel, Mgbr, MgbrConfig};
use mgbr_data::{synthetic, SyntheticConfig};
use mgbr_serve::chaos::{poison_artifact, ChaosInjector};
use mgbr_serve::{
    Admission, BatcherConfig, PoolConfig, Scorer, ServeError, WorkerPool, INITIAL_GENERATION,
};

/// A tiny frozen model; distinct `seed`s give distinct weights over the
/// same id space (the ingredient for generation-fencing tests).
fn frozen(seed: u64) -> Arc<FrozenModel> {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    let cfg = MgbrConfig {
        seed,
        ..MgbrConfig::tiny()
    };
    Arc::new(Mgbr::new(cfg, &ds).freeze())
}

fn pool_cfg(workers: usize, batcher: BatcherConfig) -> PoolConfig {
    PoolConfig {
        workers,
        admission: Admission::Shared,
        batcher,
        slo_us: None,
    }
}

/// A slow scorer (chaos stall) makes queued requests outlive a short
/// deadline budget: they must come back typed `DeadlineExceeded` —
/// exactly one reply each, never scored, never dropped — while requests
/// drained before expiry still score. Counters reconcile.
#[test]
fn deadline_expiry_under_stall_is_typed_and_complete() {
    let model = frozen(1);
    let chaos = ChaosInjector::new();
    let pool = WorkerPool::new_chaotic(
        Arc::clone(&model),
        pool_cfg(
            1,
            BatcherConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_cap: 4096,
                default_deadline: None,
            },
        ),
        Arc::clone(&chaos),
    );
    chaos.stall(Duration::from_millis(5));
    const N: usize = 64;
    let mut handles = Vec::new();
    for j in 0..N {
        handles.push(
            pool.submit_item_with_deadline(j % 8, j % 4, Duration::from_millis(1))
                .expect("queue far below cap"),
        );
    }
    let mut ok = 0u64;
    let mut expired = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(e) => panic!("unexpected reply under stall: {e}"),
        }
    }
    assert_eq!(ok + expired, N as u64, "exactly one reply per request");
    assert!(
        expired > 0,
        "a 5 ms stall against a 1 ms budget must expire queued requests"
    );
    let m = pool.metrics();
    assert_eq!(m.deadline_expired, expired);
    assert_eq!(m.requests, ok, "expired requests are never scored");
    assert_eq!(m.latency.count(), ok);
}

/// With an SLO configured, admission sheds from the tracked queue-delay
/// p99 *before* the hard cap: a burst against a backlogged queue comes
/// back `Overloaded` with a nonzero `retry_after_hint_us` while the
/// queue is nowhere near `queue_cap`, and the sheds are attributed to
/// `shed_slo` (no double count).
#[test]
fn slo_shed_fires_before_cap_with_retry_hint() {
    let model = frozen(1);
    let chaos = ChaosInjector::new();
    let pool = WorkerPool::new_chaotic(
        Arc::clone(&model),
        PoolConfig {
            workers: 1,
            admission: Admission::Shared,
            batcher: BatcherConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_cap: 4096,
                default_deadline: None,
            },
            slo_us: Some(1_000), // 1 ms queue-delay SLO
        },
        Arc::clone(&chaos),
    );
    // Phase 1 — build a provably backlogged window: with a 2 ms stall
    // per batch and batches of <= 16, most of these 64 requests wait
    // multiple milliseconds in the queue, so the window's p99 delay
    // lands far above the 1 ms SLO (and 64 samples clear the tracker's
    // cold-start floor).
    chaos.stall(Duration::from_millis(2));
    let warm: Vec<_> = (0..64usize)
        .map(|j| pool.submit_item(j % 8, j % 4).expect("below cap"))
        .collect();
    for h in warm {
        h.wait().expect("warm phase scores everything");
    }
    // Phase 2 — burst. The queue is drained and capacity is 4096, so
    // any shed here is the SLO controller acting early, not the cap.
    let mut slo_shed = 0u64;
    let mut hints = Vec::new();
    for j in 0..600usize {
        match pool.submit_item(j % 8, j % 4) {
            Ok(h) => drop(h.wait()),
            Err(ServeError::Overloaded {
                capacity,
                retry_after_hint_us,
            }) => {
                assert_eq!(capacity, 4096, "cap was never reached");
                slo_shed += 1;
                hints.push(retry_after_hint_us);
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(
        slo_shed > 0,
        "a backlogged p99 above the SLO must shed early"
    );
    assert!(
        hints.iter().all(|&h| h > 0),
        "SLO sheds carry a nonzero back-off hint"
    );
    let m = pool.metrics();
    assert_eq!(m.shed_slo, slo_shed, "every early shed attributed to SLO");
    assert_eq!(m.shed, slo_shed, "no double count: shed == shed_slo here");
}

/// Liveness regression for the SLO controller: once the tracked p99
/// exceeds the SLO, admission sheds 100%, so no batches drain and the
/// tracker's batch-count rotation can never fire — only its wall-clock
/// window bound can retire the stale p99. After the stall is lifted and
/// the backlog drains, the pool must resume admitting and scoring; a
/// transient overload must never become a permanent outage.
#[test]
fn slo_shed_recovers_after_backlog_clears() {
    let model = frozen(1);
    let chaos = ChaosInjector::new();
    let pool = WorkerPool::new_chaotic(
        Arc::clone(&model),
        PoolConfig {
            workers: 1,
            admission: Admission::Shared,
            batcher: BatcherConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_cap: 4096,
                default_deadline: None,
            },
            slo_us: Some(1_000), // 1 ms queue-delay SLO
        },
        Arc::clone(&chaos),
    );
    // Overload: a 2 ms stall per batch drives the tracked p99 far past
    // the 1 ms SLO (and past the tracker's cold-start sample floor).
    chaos.stall(Duration::from_millis(2));
    let warm: Vec<_> = (0..64usize)
        .map(|j| pool.submit_item(j % 8, j % 4).expect("below cap"))
        .collect();
    for h in warm {
        h.wait().expect("warm phase scores everything");
    }
    // The controller is now shedding (queue drained, cap untouched —
    // any Overloaded here is the SLO path).
    assert!(
        matches!(pool.submit_item(0, 0), Err(ServeError::Overloaded { .. })),
        "overloaded window must shed"
    );
    // Lift the stall; the backlog is already drained. From here the
    // pool admits nothing, so recovery can only come from the tracker's
    // wall-clock window rotation (~250 ms production bound).
    chaos.clear();
    let recovery_deadline = Instant::now() + Duration::from_secs(5);
    let recovered = loop {
        match pool.submit_item(0, 0) {
            Ok(h) => {
                h.wait().expect("recovered pool scores normally");
                break true;
            }
            Err(ServeError::Overloaded { .. }) => {
                if Instant::now() >= recovery_deadline {
                    break false;
                }
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected admission error during recovery: {e}"),
        }
    };
    assert!(
        recovered,
        "SLO shed state persisted with an empty queue: the stale delay \
         window was never retired, a transient overload became a \
         permanent outage"
    );
    let m = pool.metrics();
    assert!(m.shed_slo >= 1, "the overload phase shed at least once");
}

/// An injected worker death mid-batch must be contained: every request
/// in the dying batch is still answered (per-request fallback), scores
/// stay bitwise correct, nothing is dropped, and the pool keeps serving
/// afterwards.
#[test]
fn worker_death_mid_batch_is_contained() {
    let model = frozen(1);
    let reference = Scorer::new(Arc::clone(&model));
    let chaos = ChaosInjector::new();
    let pool = WorkerPool::new_chaotic(
        Arc::clone(&model),
        pool_cfg(
            2,
            BatcherConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_cap: 4096,
                default_deadline: None,
            },
        ),
        Arc::clone(&chaos),
    );
    chaos.arm_death(1);
    let handles: Vec<_> = (0..32usize)
        .map(|j| (j % 8, j % 4, pool.submit_item(j % 8, j % 4).expect("admit")))
        .collect();
    for (u, i, h) in handles {
        let got = h.wait().expect("answered despite the mid-batch death");
        assert_eq!(
            got.to_bits(),
            reference.score_item(u, i).expect("reference").to_bits(),
            "containment fallback must stay bitwise correct ({u}, {i})"
        );
    }
    // The pool survives the fault and keeps serving.
    chaos.clear();
    for j in 0..16usize {
        pool.score_item(j % 8, 0).expect("pool serves after death");
    }
}

/// A corrupt artifact on disk (one flipped byte mid-file) must be
/// rejected by the CRC'd loader at swap time and never published: the
/// generation does not move and the old model keeps serving bitwise
/// identically. A pristine copy of the same artifact then swaps fine.
#[test]
fn poisoned_artifact_swap_is_rejected_never_published() {
    let model = frozen(1);
    let reference = Scorer::new(Arc::clone(&model));
    let dir = std::env::temp_dir().join(format!("mgbr_resilience_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let good = dir.join("good.frozen");
    let bad = dir.join("bad.frozen");
    model.save_atomic(&good).expect("save artifact");
    std::fs::copy(&good, &bad).expect("copy artifact");
    poison_artifact(&bad).expect("poison artifact");

    let pool = WorkerPool::new(Arc::clone(&model), pool_cfg(2, BatcherConfig::default()));
    let err = pool.swap_model_from_file(&bad).unwrap_err();
    assert!(matches!(err, ServeError::SwapRejected(_)), "{err}");
    assert_eq!(
        pool.generation(),
        INITIAL_GENERATION,
        "a rejected artifact must not move the generation"
    );
    assert_eq!(pool.metrics().swaps, 0);
    for (u, i) in [(0usize, 0usize), (3, 2), (7, 1)] {
        assert_eq!(
            pool.score_item(u, i).expect("old model serves").to_bits(),
            reference.score_item(u, i).expect("reference").to_bits(),
            "old model keeps serving bitwise identically"
        );
    }
    // The pristine artifact passes the same gate.
    let receipt = pool.swap_model_from_file(&good).expect("valid swap");
    assert_eq!(receipt.new_generation, INITIAL_GENERATION + 1);
    assert_eq!(pool.generation(), receipt.new_generation);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hot-swapping in a bit-identical artifact is invisible to scores:
/// through repeated swaps under load, at 1/2/4 workers, every reply is
/// bitwise equal to the single-threaded scorer and every admitted
/// request is answered. Only the generation stamp moves.
#[test]
fn identical_swap_is_bitwise_invisible_at_any_worker_count() {
    let model = frozen(1);
    let reference = Scorer::new(Arc::clone(&model));
    for workers in [1usize, 2, 4] {
        let pool = WorkerPool::new(
            Arc::clone(&model),
            pool_cfg(
                workers,
                BatcherConfig {
                    max_batch: 8,
                    max_wait: Duration::from_micros(200),
                    queue_cap: 4096,
                    default_deadline: None,
                },
            ),
        );
        let mut swaps = 0u64;
        for round in 0..10usize {
            let handles: Vec<_> = (0..24usize)
                .map(|j| {
                    let (u, i) = ((round + j) % 8, j % 4);
                    (u, i, pool.submit_item(u, i).expect("admit"))
                })
                .collect();
            // Republish an identical artifact mid-stream.
            let clone = Arc::new((*model).clone());
            let receipt = pool.swap_model(clone).expect("identical artifact swaps");
            swaps += 1;
            assert_eq!(receipt.new_generation, INITIAL_GENERATION + swaps);
            for (u, i, h) in handles {
                let reply = h.wait_reply();
                let got = reply.result.expect("scored");
                assert_eq!(
                    got.to_bits(),
                    reference.score_item(u, i).expect("reference").to_bits(),
                    "workers={workers} round={round} ({u}, {i})"
                );
                assert!(
                    reply.generation >= INITIAL_GENERATION && reply.generation <= swaps + 1,
                    "generation stamp {} outside the published range",
                    reply.generation
                );
            }
        }
        let m = pool.metrics();
        assert_eq!(m.swaps, swaps);
        assert_eq!(m.requests, 240, "every admitted request was scored");
    }
}

/// Generation fencing with a *changed* artifact: while a producer
/// streams requests and the main thread swaps from model A (seed 1) to
/// model B (seed 2), every reply's score must match the model of the
/// generation stamped on it — old-generation replies score like A,
/// new-generation replies like B, and no reply is mixed or dropped.
#[test]
fn changed_artifact_replies_match_their_stamped_generation() {
    let model_a = frozen(1);
    let model_b = frozen(2);
    let ref_a = Scorer::new(Arc::clone(&model_a));
    let ref_b = Scorer::new(Arc::clone(&model_b));
    // Weights differ, so at least one probe pair must differ in score —
    // the pair that makes generation mixing detectable.
    let probes: Vec<(usize, usize)> = (0..8usize)
        .flat_map(|u| (0..4).map(move |i| (u, i)))
        .collect();
    assert!(
        probes
            .iter()
            .any(|&(u, i)| ref_a.score_item(u, i).expect("a").to_bits()
                != ref_b.score_item(u, i).expect("b").to_bits()),
        "seeds 1 and 2 must produce distinguishable models"
    );

    let pool = Arc::new(WorkerPool::new(
        Arc::clone(&model_a),
        pool_cfg(
            2,
            BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
                queue_cap: 4096,
                default_deadline: None,
            },
        ),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let probes = probes.clone();
        thread::spawn(move || {
            let mut replies = Vec::new();
            let mut j = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let (u, i) = probes[j % probes.len()];
                let reply = pool.submit_item(u, i).expect("admit").wait_reply();
                replies.push((u, i, reply));
                j += 1;
            }
            replies
        })
    };
    // Let generation 1 serve some traffic, then swap to model B.
    thread::sleep(Duration::from_millis(20));
    let receipt = pool.swap_model(Arc::clone(&model_b)).expect("swap to B");
    thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let replies = producer.join().expect("producer");

    let mut old_gen = 0u64;
    let mut new_gen = 0u64;
    for (u, i, reply) in replies {
        let got = reply.result.expect("every admitted request answered");
        let want = if reply.generation <= receipt.old_generation {
            old_gen += 1;
            ref_a.score_item(u, i).expect("ref a")
        } else {
            new_gen += 1;
            ref_b.score_item(u, i).expect("ref b")
        };
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "reply stamped generation {} must score like that generation ({u}, {i})",
            reply.generation
        );
    }
    assert!(old_gen > 0, "some traffic served before the swap");
    assert!(new_gen > 0, "some traffic served after the swap");
}

/// Clock jumps around the deadline comparison: a forward jump larger
/// than every budget expires all queued requests (typed, exactly one
/// reply each); a backward jump must never panic, double-score, or
/// wedge the pool — requests simply stop expiring and score normally.
#[test]
fn clock_jumps_expire_forward_and_never_wedge_backward() {
    let model = frozen(1);
    let chaos = ChaosInjector::new();
    let pool = WorkerPool::new_chaotic(
        Arc::clone(&model),
        pool_cfg(
            1,
            BatcherConfig {
                max_batch: 16,
                max_wait: Duration::from_micros(100),
                queue_cap: 4096,
                // Generous budget: only the injected jump can expire it.
                default_deadline: Some(Duration::from_secs(10)),
            },
        ),
        Arc::clone(&chaos),
    );
    // Forward jump past every queued budget: all expire, typed.
    chaos.jump_clock(20_000_000); // +20 s in µs
    for j in 0..8usize {
        assert!(
            matches!(pool.score_item(j % 8, 0), Err(ServeError::DeadlineExceeded)),
            "a +20 s clock jump must expire a 10 s budget"
        );
    }
    let expired = pool.metrics().deadline_expired;
    assert_eq!(expired, 8);
    // Backward jump with a tight budget: nothing expires, everything
    // scores, exactly once, no panic.
    chaos.jump_clock(-20_000_000);
    for j in 0..8usize {
        pool.submit_item_with_deadline(j % 8, 0, Duration::from_micros(1))
            .expect("admit")
            .wait()
            .expect("a backward-jumped clock must not expire or wedge");
    }
    let m = pool.metrics();
    assert_eq!(
        m.deadline_expired, expired,
        "no new expiries after the backward jump"
    );
    assert_eq!(m.requests, 8);
}

/// Env knobs fail closed: malformed `MGBR_SERVE_WORKERS` /
/// `MGBR_SERVE_SLO_US` / `MGBR_SERVE_DEADLINE_US` are typed
/// `BadConfig` errors, never silent defaults. One test fn on purpose:
/// the process environment is global and tests run concurrently.
#[test]
fn env_knobs_fail_closed_on_malformed_values() {
    let clear = || {
        std::env::remove_var("MGBR_SERVE_WORKERS");
        std::env::remove_var("MGBR_SERVE_SLO_US");
        std::env::remove_var("MGBR_SERVE_DEADLINE_US");
    };
    clear();
    for (var, bad) in [
        ("MGBR_SERVE_WORKERS", "four"),
        ("MGBR_SERVE_WORKERS", "0"),
        ("MGBR_SERVE_WORKERS", ""),
        ("MGBR_SERVE_WORKERS", "-2"),
        ("MGBR_SERVE_SLO_US", "5ms"),
        ("MGBR_SERVE_SLO_US", "0"),
        ("MGBR_SERVE_DEADLINE_US", "soon"),
        ("MGBR_SERVE_DEADLINE_US", "1.5"),
    ] {
        clear();
        std::env::set_var(var, bad);
        let err = PoolConfig::from_env().expect_err("malformed knob must fail closed");
        assert!(
            matches!(err, ServeError::BadConfig(_)),
            "{var}={bad:?} gave {err}"
        );
        assert!(
            err.to_string().contains(var),
            "the error names the offending knob: {err}"
        );
    }
    // Well-formed knobs apply exactly.
    clear();
    std::env::set_var("MGBR_SERVE_WORKERS", "3");
    std::env::set_var("MGBR_SERVE_SLO_US", "2500");
    std::env::set_var("MGBR_SERVE_DEADLINE_US", "800");
    let cfg = PoolConfig::from_env().expect("valid knobs parse");
    assert_eq!(cfg.workers, 3);
    assert_eq!(cfg.slo_us, Some(2500));
    assert_eq!(
        cfg.batcher.default_deadline,
        Some(Duration::from_micros(800))
    );
    // Absent knobs mean defaults (not errors).
    clear();
    let cfg = PoolConfig::from_env().expect("absent knobs are fine");
    assert_eq!(cfg.slo_us, None);
    assert_eq!(cfg.batcher.default_deadline, None);
}

/// Snapshot-while-merging: `WorkerPool::metrics()` merges per-worker
/// blocks while workers are actively recording and admission is actively
/// shedding. Every successive snapshot must be monotone in all counters
/// (no tearing backwards, no double-counted sheds) and the final
/// snapshot must reconcile exactly with what the producers observed.
#[test]
fn concurrent_metrics_snapshots_are_monotone_and_reconcile() {
    let model = frozen(1);
    let pool = Arc::new(WorkerPool::new(
        Arc::clone(&model),
        pool_cfg(
            2,
            BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(100),
                queue_cap: 16, // small cap: force real sheds
                default_deadline: None,
            },
        ),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let snapshotter = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut prev = pool.metrics();
            let mut snaps = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let cur = pool.metrics();
                assert!(cur.requests >= prev.requests, "requests went backwards");
                assert!(cur.batches >= prev.batches, "batches went backwards");
                assert!(cur.shed >= prev.shed, "shed went backwards");
                assert!(cur.shed_slo >= prev.shed_slo, "shed_slo went backwards");
                assert!(
                    cur.deadline_expired >= prev.deadline_expired,
                    "deadline_expired went backwards"
                );
                assert!(cur.swaps >= prev.swaps, "swaps went backwards");
                assert!(
                    cur.latency.count() >= prev.latency.count(),
                    "latency count went backwards"
                );
                prev = cur;
                snaps += 1;
            }
            snaps
        })
    };
    let mut producers = Vec::new();
    for t in 0..4usize {
        let pool = Arc::clone(&pool);
        producers.push(thread::spawn(move || {
            let mut ok = 0u64;
            let mut shed = 0u64;
            for j in 0..400usize {
                match pool.submit_item((t + j) % 8, j % 4) {
                    Ok(h) => {
                        h.wait().expect("admitted requests score");
                        ok += 1;
                    }
                    Err(ServeError::Overloaded { .. }) => shed += 1,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            (ok, shed)
        }));
    }
    let mut total_ok = 0u64;
    let mut total_shed = 0u64;
    for p in producers {
        let (ok, shed) = p.join().expect("producer");
        total_ok += ok;
        total_shed += shed;
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = snapshotter.join().expect("snapshotter");
    assert!(snaps > 1, "the snapshotter actually raced the merge");
    let m = pool.metrics();
    assert_eq!(m.requests, total_ok, "scored exactly the admitted requests");
    assert_eq!(m.shed, total_shed, "sheds counted exactly once");
    assert_eq!(m.shed_slo, 0, "no SLO configured: every shed was at-cap");
    assert_eq!(m.latency.count(), total_ok);
}
