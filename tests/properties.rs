//! Property-based tests on the workspace's core invariants: tensor
//! algebra, graph normalization, sampling exclusions, metric ranges, and
//! generator schema guarantees under randomized inputs.
//!
//! The case generator is the in-tree [`Pcg32`] (no external proptest
//! dependency — the workspace must build offline): each property runs 64
//! seeded cases, and failures report the case index so a run is exactly
//! reproducible.

use mgbr_data::{filter_min_interactions, synthetic, Dataset, DealGroup, Sampler, SyntheticConfig};
use mgbr_eval::metrics::{mrr_at, ndcg_at, rank_of_positive};
use mgbr_graph::{spmm, Csr};
use mgbr_tensor::{matmul, matmul_nt, matmul_tn, Pcg32, Tensor};

const CASES: u64 = 64;

/// Runs `body` for `CASES` independently seeded cases.
fn for_cases(name: &str, mut body: impl FnMut(u64, &mut Pcg32)) {
    for case in 0..CASES {
        // Decorrelate the per-case streams from the raw case index.
        let mut rng = Pcg32::seed_from_u64(0x9e37_79b9 ^ (case * 0x1000_0001));
        let _ = name;
        body(case, &mut rng);
    }
}

fn random_tensor(rng: &mut Pcg32, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| rng.uniform() * 20.0 - 10.0)
        .collect();
    Tensor::from_vec(rows, cols, data).expect("sized vec")
}

fn random_edges(rng: &mut Pcg32, n: usize, max_edges: usize) -> Vec<(usize, usize)> {
    let count = 1 + (rng.next_u64() as usize) % max_edges;
    (0..count)
        .map(|_| ((rng.next_u64() as usize) % n, (rng.next_u64() as usize) % n))
        .collect()
}

// --- Tensor algebra -------------------------------------------------------

#[test]
fn matmul_distributes_over_addition() {
    for_cases("matmul_distributes", |case, rng| {
        let a = random_tensor(rng, 3, 4);
        let b = random_tensor(rng, 4, 2);
        let c = random_tensor(rng, 4, 2);
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-2, "case {case}: {x} vs {y}");
        }
    });
}

#[test]
fn matmul_transpose_variants_agree() {
    for_cases("matmul_transpose", |case, rng| {
        let a = random_tensor(rng, 3, 5);
        let b = random_tensor(rng, 5, 2);
        let direct = matmul(&a, &b);
        let via_nt = matmul_nt(&a, &b.transpose());
        let via_tn = matmul_tn(&a.transpose(), &b);
        for ((x, y), z) in direct
            .as_slice()
            .iter()
            .zip(via_nt.as_slice())
            .zip(via_tn.as_slice())
        {
            assert!((x - y).abs() < 1e-3, "case {case}: nt {x} vs {y}");
            assert!((x - z).abs() < 1e-3, "case {case}: tn {x} vs {z}");
        }
    });
}

#[test]
fn concat_slice_roundtrip() {
    for_cases("concat_slice", |case, rng| {
        let a = random_tensor(rng, 4, 3);
        let b = random_tensor(rng, 4, 5);
        let joined = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(joined.slice_cols(0, 3), a, "case {case}");
        assert_eq!(joined.slice_cols(3, 5), b, "case {case}");
    });
}

#[test]
fn softmax_rows_is_distribution() {
    for_cases("softmax_rows", |case, rng| {
        let x = random_tensor(rng, 3, 6);
        let s = x.softmax_rows();
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "case {case}: row sum {sum}");
            assert!(s.row(r).iter().all(|&v| v >= 0.0), "case {case}");
        }
    });
}

#[test]
fn log_sigmoid_is_log_of_sigmoid() {
    for_cases("log_sigmoid", |case, rng| {
        let x = random_tensor(rng, 2, 5);
        let ls = x.log_sigmoid();
        let sl = x.sigmoid().map(f32::ln);
        for (a, b) in ls.as_slice().iter().zip(sl.as_slice()) {
            assert!((a - b).abs() < 1e-4, "case {case}: {a} vs {b}");
        }
    });
}

// --- Graph substrate ------------------------------------------------------

#[test]
fn normalized_adjacency_is_symmetric_and_bounded() {
    for_cases("normalized_adjacency", |case, rng| {
        let edges = random_edges(rng, 12, 40);
        let adj = Csr::undirected_adjacency(12, &edges);
        let norm = adj.sym_normalized();
        assert!(norm.is_symmetric(), "case {case}");
        // Spectral bound: all entries of D^{-1/2}(A+I)D^{-1/2} lie in [0,1].
        for r in 0..12 {
            for (_, v) in norm.row(r) {
                assert!((0.0..=1.0 + 1e-5).contains(&v), "case {case}: entry {v}");
            }
        }
    });
}

#[test]
fn spmm_linear_in_rhs() {
    for_cases("spmm_linear", |case, rng| {
        let edges = random_edges(rng, 8, 20);
        let x = random_tensor(rng, 8, 3);
        let alpha = rng.uniform() * 6.0 - 3.0;
        let adj = Csr::undirected_adjacency(8, &edges).sym_normalized();
        let lhs = spmm(&adj, &x.scale(alpha));
        let rhs = spmm(&adj, &x).scale(alpha);
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((a - b).abs() < 1e-3, "case {case}: {a} vs {b}");
        }
    });
}

// --- Metrics --------------------------------------------------------------

#[test]
fn rank_is_within_list() {
    for_cases("rank_within_list", |case, rng| {
        let len = 1 + (rng.next_u64() as usize) % 29;
        let scores: Vec<f32> = (0..len).map(|_| rng.uniform() * 10.0 - 5.0).collect();
        let rank = rank_of_positive(&scores);
        assert!(
            rank >= 1 && rank <= scores.len(),
            "case {case}: rank {rank} in 1..={len}"
        );
    });
}

#[test]
fn metric_monotone_in_rank() {
    for_cases("metric_monotone", |case, rng| {
        let rank = 1 + (rng.next_u64() as usize) % 49;
        let cutoff = 1 + (rng.next_u64() as usize) % 19;
        let m1 = mrr_at(rank, cutoff);
        let m2 = mrr_at(rank + 1, cutoff);
        assert!(m1 >= m2, "case {case}");
        let n1 = ndcg_at(rank, cutoff);
        let n2 = ndcg_at(rank + 1, cutoff);
        assert!(n1 >= n2, "case {case}");
        assert!((0.0..=1.0).contains(&m1), "case {case}");
        assert!((0.0..=1.0).contains(&n1), "case {case}");
    });
}

// --- Sampling -------------------------------------------------------------

#[test]
fn negative_items_respect_interactions() {
    for_cases("negative_items", |case, rng| {
        let seed = rng.next_u64() % 500;
        let ds = synthetic::generate(&SyntheticConfig {
            seed,
            ..SyntheticConfig::tiny()
        });
        let mut sampler = Sampler::new(&ds, seed);
        let g = &ds.groups[0];
        let negs = sampler.negative_items(g.initiator, 9);
        assert_eq!(negs.len(), 9, "case {case}");
        for &i in &negs {
            assert!(!sampler.interacted(g.initiator, i), "case {case}: item {i}");
        }
    });
}

#[test]
fn filter_never_increases_counts() {
    for_cases("filter_counts", |case, rng| {
        let min = (rng.next_u64() as usize) % 8;
        let seed = rng.next_u64() % 200;
        let ds = synthetic::generate(&SyntheticConfig {
            seed,
            ..SyntheticConfig::tiny()
        });
        let (out, report) = filter_min_interactions(&ds, min);
        assert!(out.groups.len() <= ds.groups.len(), "case {case}");
        assert!(out.n_users <= ds.n_users, "case {case}");
        assert!(out.n_items <= ds.n_items, "case {case}");
        assert_eq!(
            report.groups_removed,
            ds.groups.len() - out.groups.len(),
            "case {case}"
        );
        // Validity of all ids in the compacted dataset is checked by the
        // Dataset constructor inside the filter.
    });
}

// --- Generator schema -----------------------------------------------------

#[test]
fn generator_schema_invariants() {
    for_cases("generator_schema", |case, rng| {
        let seed = rng.next_u64() % 300;
        let cfg = SyntheticConfig {
            seed,
            n_groups: 60,
            ..SyntheticConfig::tiny()
        };
        let ds = synthetic::generate(&cfg);
        assert_eq!(ds.groups.len(), 60, "case {case}");
        for g in &ds.groups {
            assert!((g.initiator as usize) < cfg.n_users, "case {case}");
            assert!((g.item as usize) < cfg.n_items, "case {case}");
            assert!(!g.participants.contains(&g.initiator), "case {case}");
            assert!(g.participants.len() <= cfg.max_group_size, "case {case}");
        }
    });
}

// --- Deterministic cross-crate properties ---------------------------------

#[test]
fn rng_streams_are_reproducible_across_forks() {
    let mut parent1 = Pcg32::seed_from_u64(99);
    let mut parent2 = Pcg32::seed_from_u64(99);
    let mut c1 = parent1.fork(5);
    let mut c2 = parent2.fork(5);
    for _ in 0..64 {
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
}

#[test]
fn dataset_edges_are_consistent_with_groups() {
    let ds = Dataset::new(
        5,
        3,
        vec![
            DealGroup::new(0, 1, vec![2, 4]),
            DealGroup::new(3, 0, vec![1]),
        ],
    );
    assert_eq!(ds.ui_edges().len(), ds.groups.len());
    let total_participants: usize = ds.groups.iter().map(DealGroup::size).sum();
    assert_eq!(ds.pi_edges().len(), total_participants);
    assert_eq!(ds.up_edges().len(), total_participants);
}
