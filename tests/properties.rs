//! Property-based tests (proptest) on the workspace's core invariants:
//! tensor algebra, graph normalization, sampling exclusions, metric
//! ranges, and generator schema guarantees under arbitrary inputs.

use proptest::prelude::*;

use mgbr_data::{filter_min_interactions, synthetic, Dataset, DealGroup, Sampler, SyntheticConfig};
use mgbr_eval::metrics::{mrr_at, ndcg_at, rank_of_positive};
use mgbr_graph::{spmm, Csr};
use mgbr_tensor::{matmul, matmul_nt, matmul_tn, Pcg32, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v).expect("sized vec"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Tensor algebra -------------------------------------------------

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_variants_agree(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(5, 2),
    ) {
        let direct = matmul(&a, &b);
        let via_nt = matmul_nt(&a, &b.transpose());
        let via_tn = matmul_tn(&a.transpose(), &b);
        for ((x, y), z) in direct.as_slice().iter().zip(via_nt.as_slice()).zip(via_tn.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
            prop_assert!((x - z).abs() < 1e-3);
        }
    }

    #[test]
    fn concat_slice_roundtrip(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(4, 5),
    ) {
        let joined = Tensor::concat_cols(&[&a, &b]);
        prop_assert_eq!(joined.slice_cols(0, 3), a);
        prop_assert_eq!(joined.slice_cols(3, 5), b);
    }

    #[test]
    fn softmax_rows_is_distribution(x in tensor_strategy(3, 6)) {
        let s = x.softmax_rows();
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn log_sigmoid_is_log_of_sigmoid(x in tensor_strategy(2, 5)) {
        let ls = x.log_sigmoid();
        let sl = x.sigmoid().map(f32::ln);
        for (a, b) in ls.as_slice().iter().zip(sl.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    // --- Graph substrate -------------------------------------------------

    #[test]
    fn normalized_adjacency_is_symmetric_and_bounded(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 1..40),
    ) {
        let adj = Csr::undirected_adjacency(12, &edges);
        let norm = adj.sym_normalized();
        prop_assert!(norm.is_symmetric());
        // Spectral bound: all entries of D^{-1/2}(A+I)D^{-1/2} lie in [0,1].
        for r in 0..12 {
            for (_, v) in norm.row(r) {
                prop_assert!((0.0..=1.0 + 1e-5).contains(&v), "entry {v}");
            }
        }
    }

    #[test]
    fn spmm_linear_in_rhs(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 1..20),
        x in tensor_strategy(8, 3),
        alpha in -3.0f32..3.0,
    ) {
        let adj = Csr::undirected_adjacency(8, &edges).sym_normalized();
        let lhs = spmm(&adj, &x.scale(alpha));
        let rhs = spmm(&adj, &x).scale(alpha);
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    // --- Metrics ----------------------------------------------------------

    #[test]
    fn rank_is_within_list(scores in proptest::collection::vec(-5.0f32..5.0, 1..30)) {
        let rank = rank_of_positive(&scores);
        prop_assert!(rank >= 1 && rank <= scores.len());
    }

    #[test]
    fn metric_monotone_in_rank(rank in 1usize..50, cutoff in 1usize..20) {
        let m1 = mrr_at(rank, cutoff);
        let m2 = mrr_at(rank + 1, cutoff);
        prop_assert!(m1 >= m2);
        let n1 = ndcg_at(rank, cutoff);
        let n2 = ndcg_at(rank + 1, cutoff);
        prop_assert!(n1 >= n2);
        prop_assert!((0.0..=1.0).contains(&m1));
        prop_assert!((0.0..=1.0).contains(&n1));
    }

    // --- Sampling ----------------------------------------------------------

    #[test]
    fn negative_items_respect_interactions(seed in 0u64..500) {
        let ds = synthetic::generate(&SyntheticConfig { seed, ..SyntheticConfig::tiny() });
        let mut sampler = Sampler::new(&ds, seed);
        let g = &ds.groups[0];
        let negs = sampler.negative_items(g.initiator, 9);
        prop_assert_eq!(negs.len(), 9);
        for &i in &negs {
            prop_assert!(!sampler.interacted(g.initiator, i));
        }
    }

    #[test]
    fn filter_never_increases_counts(min in 0usize..8, seed in 0u64..200) {
        let ds = synthetic::generate(&SyntheticConfig { seed, ..SyntheticConfig::tiny() });
        let (out, report) = filter_min_interactions(&ds, min);
        prop_assert!(out.groups.len() <= ds.groups.len());
        prop_assert!(out.n_users <= ds.n_users);
        prop_assert!(out.n_items <= ds.n_items);
        prop_assert_eq!(report.groups_removed, ds.groups.len() - out.groups.len());
        // Validity of all ids in the compacted dataset is checked by the
        // Dataset constructor inside the filter.
    }

    // --- Generator schema ----------------------------------------------------

    #[test]
    fn generator_schema_invariants(seed in 0u64..300) {
        let cfg = SyntheticConfig { seed, n_groups: 60, ..SyntheticConfig::tiny() };
        let ds = synthetic::generate(&cfg);
        prop_assert_eq!(ds.groups.len(), 60);
        for g in &ds.groups {
            prop_assert!((g.initiator as usize) < cfg.n_users);
            prop_assert!((g.item as usize) < cfg.n_items);
            prop_assert!(!g.participants.contains(&g.initiator));
            prop_assert!(g.participants.len() <= cfg.max_group_size);
        }
    }
}

// --- Deterministic (non-proptest) cross-crate properties ------------------

#[test]
fn rng_streams_are_reproducible_across_forks() {
    let mut parent1 = Pcg32::seed_from_u64(99);
    let mut parent2 = Pcg32::seed_from_u64(99);
    let mut c1 = parent1.fork(5);
    let mut c2 = parent2.fork(5);
    for _ in 0..64 {
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
}

#[test]
fn dataset_edges_are_consistent_with_groups() {
    let ds = Dataset::new(
        5,
        3,
        vec![DealGroup::new(0, 1, vec![2, 4]), DealGroup::new(3, 0, vec![1])],
    );
    assert_eq!(ds.ui_edges().len(), ds.groups.len());
    let total_participants: usize = ds.groups.iter().map(DealGroup::size).sum();
    assert_eq!(ds.pi_edges().len(), total_participants);
    assert_eq!(ds.up_edges().len(), total_participants);
}
