//! Online-loop property suite.
//!
//! Pins the contracts the serve-while-learning path stands on:
//!
//! 1. **Split determinism** — the temporal split and its event stream
//!    are pure functions of the dataset: identical across repeated
//!    calls, kernel thread counts, and unrelated RNG seeds; the stream
//!    replays exactly the tail, announcing cold entities before first
//!    use.
//! 2. **Fold-in neutrality** — growing a frozen artifact's id spaces
//!    through the fold-in ledger leaves every pre-existing entity's
//!    scores bitwise unchanged, while folded entities become servable.
//! 3. **Resumable fine-tuning** — a fine-tune cycle killed at a round
//!    boundary and resumed from its checkpoint reaches bitwise-equal
//!    parameters, at any thread count.
//! 4. **Whole-loop determinism** — the full loop (ingest → drift →
//!    fine-tune → freeze-with-folds) publishes bitwise-identical
//!    artifacts at threads 1, 2, and 4.

use mgbr_core::{fine_tune, train, FineTuneConfig, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{synthetic, temporal_split, DataSplit, Dataset, SyntheticConfig, UpdateEvent};
use mgbr_online::{OnlineConfig, OnlineLoop};
use mgbr_tensor::Workspace;

fn dataset(seed: u64) -> Dataset {
    synthetic::generate(&SyntheticConfig {
        seed,
        ..SyntheticConfig::tiny()
    })
}

fn params_of(model: &Mgbr) -> Vec<u32> {
    model
        .store
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits()))
        .collect()
}

fn frozen_bits(fz: &mgbr_core::FrozenModel) -> Vec<u32> {
    let tensors = [
        fz.user_embeddings(),
        fz.item_embeddings(),
        fz.participant_embeddings(),
    ];
    tensors
        .iter()
        .flat_map(|t| t.as_slice().iter().map(|x| x.to_bits()))
        .chain(
            fz.params()
                .iter()
                .flat_map(|t| t.as_slice().iter().map(|x| x.to_bits())),
        )
        .collect()
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mgbr_online_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Property 1: the split protocol is a pure function of the dataset —
/// stable across repeated calls and kernel thread counts, ordered by
/// time, partitioning every group exactly once.
#[test]
fn temporal_split_is_deterministic_across_seeds_and_thread_counts() {
    let pinned = std::env::var("MGBR_THREADS").is_ok();
    for seed in [1u64, 7, 42] {
        let ds = dataset(seed);
        let reference = temporal_split(&ds, 0.7);
        assert_eq!(
            reference.train.len() + reference.tail.len(),
            ds.groups.len()
        );
        let boundary = reference.boundary();
        assert!(reference.train.iter().all(|g| g.timestamp <= boundary));
        assert!(reference.tail.iter().all(|g| g.timestamp >= boundary));

        for threads in [1usize, 2, 4] {
            if !pinned {
                mgbr_tensor::set_threads(threads);
            }
            let again = temporal_split(&ds, 0.7);
            assert_eq!(
                again.train, reference.train,
                "seed {seed} threads {threads}"
            );
            assert_eq!(again.tail, reference.tail, "seed {seed} threads {threads}");
            assert_eq!(again.update_events(), reference.update_events());
            assert_eq!(again.event_batches(16), reference.event_batches(16));
        }
        if !pinned {
            mgbr_tensor::set_threads(1);
        }

        // The stream replays exactly the tail, cold entities first.
        let replayed: Vec<_> = reference
            .update_events()
            .into_iter()
            .filter_map(|e| match e {
                UpdateEvent::NewGroup(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(replayed, reference.tail);
    }
}

/// Property 2: folding cold entities into a frozen artifact (via the
/// ledger, as the loop does) leaves every pre-existing score bitwise
/// unchanged — task A and task B heads both — while the folded
/// entities become servable.
#[test]
fn fold_in_leaves_all_preexisting_scores_bitwise_unchanged() {
    // Guarantee cold entities: extend the id spaces and add late groups
    // that reference users/items no prefix group can have seen.
    let ds = {
        let base = dataset(3);
        let last = base.groups.iter().map(|g| g.timestamp).max().unwrap_or(0);
        let nu = base.n_users as u32;
        let ni = base.n_items as u32;
        let mut groups = base.groups.clone();
        groups.push(mgbr_data::DealGroup::new(nu, ni, vec![0, 1]).at(last + 1));
        groups.push(mgbr_data::DealGroup::new(2, 0, vec![3, nu + 1]).at(last + 2));
        groups.push(mgbr_data::DealGroup::new(nu + 1, ni + 1, vec![nu]).at(last + 3));
        Dataset::new(base.n_users + 2, base.n_items + 2, groups)
    };
    let split = temporal_split(&ds, 0.7);
    let base = split.train_dataset();
    let model = Mgbr::new(MgbrConfig::tiny(), &base);
    let before = model.freeze();

    let driver = {
        let mut d = OnlineLoop::new(model, base.clone(), OnlineConfig::default()).unwrap();
        d.ingest(&split.update_events());
        d
    };
    let after = driver.frozen().unwrap();
    assert!(
        after.n_users() > before.n_users() || after.n_items() > before.n_items(),
        "temporal tail of a fresh seed should contain cold entities"
    );

    let ws = Workspace::new();
    let items: Vec<usize> = (0..before.n_items()).collect();
    for user in 0..before.n_users() {
        let a = before.logits_a(&ws, user, &items);
        let b = after.logits_a(&ws, user, &items);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "task A score changed for user {user}, item {i}"
            );
        }
    }
    let triples: Vec<(usize, usize, usize)> = (0..before.n_users().min(16))
        .map(|u| (u, u % before.n_items(), (u + 1) % before.n_users()))
        .collect();
    let tb_before = before.logits_b_triples(&ws, &triples);
    let tb_after = after.logits_b_triples(&ws, &triples);
    for (x, y) in tb_before.iter().zip(&tb_after) {
        assert_eq!(x.to_bits(), y.to_bits(), "task B score changed");
    }

    // Folded entities are servable and finite.
    for user in before.n_users()..after.n_users() {
        let s = after.logits_a(&ws, user, &items[..1.min(items.len())]);
        assert!(
            s.iter().all(|x| x.is_finite()),
            "cold user {user} unservable"
        );
    }
    for item in before.n_items()..after.n_items() {
        let s = after.logits_a(&ws, 0, &[item]);
        assert!(s[0].is_finite(), "cold item {item} unservable");
    }
    after.validate().unwrap();
}

/// Property 3: a fine-tune cycle killed at a round boundary resumes
/// from its v2 checkpoint to bitwise-equal parameters, at any thread
/// count.
#[test]
fn interrupted_fine_tune_resumes_bitwise_identically() {
    if std::env::var("MGBR_THREADS").is_ok() {
        return;
    }
    let ds = dataset(5);
    let split = temporal_split(&ds, 0.7);
    let full = split.full_dataset();
    let dir = scratch("ft_resume");

    let warm = |threads: usize| -> Mgbr {
        let mut m = Mgbr::new(MgbrConfig::tiny(), &ds);
        let offline = DataSplit {
            n_users: ds.n_users,
            n_items: ds.n_items,
            train: split.train.clone(),
            val: Vec::new(),
            test: Vec::new(),
        };
        let tc = TrainConfig {
            epochs: 2,
            threads,
            ..TrainConfig::tiny()
        };
        train(&mut m, &ds, &offline, &tc).unwrap();
        m
    };
    let ftc = |threads: usize| FineTuneConfig {
        rounds: 3,
        threads,
        ..FineTuneConfig::default()
    };

    for threads in [1usize, 2, 4] {
        // Reference: uninterrupted 3-round cycle.
        let mut reference = warm(threads);
        fine_tune(&mut reference, &full, &split.tail, &ftc(threads)).unwrap();
        let want = params_of(&reference);

        for kill_at in 1..3usize {
            let path = dir.join(format!("t{threads}_k{kill_at}.ckpt"));
            let _ = std::fs::remove_file(&path);
            let killed_cfg = FineTuneConfig {
                rounds: kill_at,
                checkpoint_every: 1,
                checkpoint_path: Some(path.clone()),
                resume: true,
                ..ftc(threads)
            };
            let mut victim = warm(threads);
            fine_tune(&mut victim, &full, &split.tail, &killed_cfg).unwrap();
            assert!(path.exists(), "killed cycle must leave a checkpoint");

            let resume_cfg = FineTuneConfig {
                checkpoint_every: 1,
                checkpoint_path: Some(path.clone()),
                resume: true,
                ..ftc(threads)
            };
            let mut resumed = warm(threads);
            let report = fine_tune(&mut resumed, &full, &split.tail, &resume_cfg).unwrap();
            assert_eq!(
                report.epoch_losses.len(),
                3 - kill_at,
                "resume must continue, not restart (threads={threads}, kill={kill_at})"
            );
            assert_eq!(
                want,
                params_of(&resumed),
                "resumed fine-tune diverged (threads={threads}, kill={kill_at})"
            );
        }
    }
    mgbr_tensor::set_threads(1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property 4 (the acceptance bar): the whole loop — offline train,
/// stream ingest, drift-triggered fine-tuning, freeze with folds — is
/// bitwise deterministic at threads 1, 2, and 4.
#[test]
fn whole_loop_is_bitwise_deterministic_across_thread_counts() {
    if std::env::var("MGBR_THREADS").is_ok() {
        return;
    }
    let ds = dataset(9);
    let split = temporal_split(&ds, 0.7);

    let run = |threads: usize| -> Vec<u32> {
        let base = split.train_dataset();
        let mut model = Mgbr::new(MgbrConfig::tiny(), &base);
        let offline = DataSplit {
            n_users: base.n_users,
            n_items: base.n_items,
            train: base.groups.clone(),
            val: Vec::new(),
            test: Vec::new(),
        };
        let tc = TrainConfig {
            epochs: 2,
            threads,
            ..TrainConfig::tiny()
        };
        train(&mut model, &base, &offline, &tc).unwrap();

        let cfg = OnlineConfig {
            fine_tune: FineTuneConfig {
                rounds: 1,
                threads,
                ..FineTuneConfig::default()
            },
            ..OnlineConfig::default()
        };
        let mut driver = OnlineLoop::new(model, base, cfg).unwrap();
        // Replay the stream in bounded batches, fine-tuning mid-stream
        // and at the end (manual triggers: metric-independent, so the
        // property isolates the learning path).
        let batches = split.event_batches(24);
        let half = batches.len() / 2;
        for (i, b) in batches.iter().enumerate() {
            driver.ingest(b);
            if i + 1 == half {
                driver.update().unwrap();
            }
        }
        driver.update().unwrap();
        frozen_bits(&driver.frozen().unwrap())
    };

    let want = run(1);
    for threads in [2usize, 4] {
        assert_eq!(
            want,
            run(threads),
            "published artifact diverged at threads {threads}"
        );
    }
    mgbr_tensor::set_threads(1);
}
