//! Protocol conformance: all seven compared models (six baselines + MGBR)
//! implement the two-task scoring interface coherently on a shared
//! environment.

use mgbr_baselines::{
    train_baseline, Baseline, BaselineConfig, BaselineScorer, DeepMf, DiffNet, Eatnn, Gbgcn, Gbmf,
    Ngcf,
};
use mgbr_core::{train, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{split_dataset, synthetic, DataSplit, Dataset, SyntheticConfig};
use mgbr_eval::GroupBuyScorer;

fn env() -> (Dataset, DataSplit) {
    let ds = synthetic::generate(&SyntheticConfig {
        n_users: 120,
        n_items: 50,
        n_groups: 400,
        ..SyntheticConfig::tiny()
    });
    let split = split_dataset(&ds, (7.0, 3.0, 1.0), 3);
    (ds, split)
}

fn check_scorer(scorer: &dyn GroupBuyScorer, n_users: usize, n_items: usize) {
    // Score length and order invariants on both tasks.
    let items: Vec<u32> = (0..10.min(n_items) as u32).collect();
    let s = scorer.score_items(1, &items);
    assert_eq!(
        s.len(),
        items.len(),
        "{}: wrong item score count",
        scorer.name()
    );
    assert!(
        s.iter().all(|x| x.is_finite()),
        "{}: non-finite item score",
        scorer.name()
    );

    let parts: Vec<u32> = (1..11.min(n_users) as u32).collect();
    let sp = scorer.score_participants(0, 0, &parts);
    assert_eq!(
        sp.len(),
        parts.len(),
        "{}: wrong participant score count",
        scorer.name()
    );
    assert!(
        sp.iter().all(|x| x.is_finite()),
        "{}: non-finite participant score",
        scorer.name()
    );

    // Determinism.
    assert_eq!(
        s,
        scorer.score_items(1, &items),
        "{}: nondeterministic",
        scorer.name()
    );

    // Permutation equivariance.
    let rev: Vec<u32> = items.iter().rev().copied().collect();
    let sr = scorer.score_items(1, &rev);
    for (k, &item_score) in s.iter().enumerate() {
        assert_eq!(
            item_score,
            sr[items.len() - 1 - k],
            "{}: order-dependent",
            scorer.name()
        );
    }
}

fn run_baseline<M: Baseline>(mut model: M, ds: &Dataset, split: &DataSplit) -> BaselineScorer {
    let tc = TrainConfig {
        epochs: 1,
        n_neg: 3,
        ..TrainConfig::tiny()
    };
    train_baseline(&mut model, ds, split, &tc);
    BaselineScorer::freeze(&model)
}

#[test]
fn all_baselines_conform() {
    let (ds, split) = env();
    let cfg = BaselineConfig::tiny();
    let train_ds = split.train_dataset();
    let scorers: Vec<BaselineScorer> = vec![
        run_baseline(DeepMf::new(&cfg, &train_ds), &ds, &split),
        run_baseline(Ngcf::new(&cfg, &train_ds), &ds, &split),
        run_baseline(DiffNet::new(&cfg, &train_ds), &ds, &split),
        run_baseline(Eatnn::new(&cfg, &train_ds), &ds, &split),
        run_baseline(Gbgcn::new(&cfg, &train_ds), &ds, &split),
        run_baseline(Gbmf::new(&cfg, &train_ds), &ds, &split),
    ];
    let names: Vec<&str> = scorers.iter().map(|s| s.name()).collect();
    assert_eq!(
        names,
        vec!["DeepMF", "NGCF", "DiffNet", "EATNN", "GBGCN", "GBMF"]
    );
    for scorer in &scorers {
        check_scorer(scorer, ds.n_users, ds.n_items);
    }
}

#[test]
fn mgbr_and_variants_conform() {
    let (ds, split) = env();
    let tc = TrainConfig {
        epochs: 1,
        n_neg: 3,
        ..TrainConfig::tiny()
    };
    for variant in mgbr_core::MgbrVariant::all() {
        let cfg = MgbrConfig {
            d: 6,
            n_experts: 2,
            t_size: 3,
            mlp_hidden: vec![6],
            ..MgbrConfig::paper()
        }
        .with_variant(variant);
        let mut model = Mgbr::new(cfg, &split.train_dataset());
        train(&mut model, &ds, &split, &tc).expect("training failed");
        let scorer = model.scorer();
        assert_eq!(scorer.name(), variant.label());
        check_scorer(&scorer, ds.n_users, ds.n_items);
    }
}

#[test]
fn param_counts_follow_architecture_ordering() {
    let (_, split) = env();
    let train_ds = split.train_dataset();
    let bcfg = BaselineConfig::tiny();

    let gbmf = Gbmf::new(&bcfg, &train_ds).param_count();
    let deepmf = DeepMf::new(&bcfg, &train_ds).param_count();
    let eatnn = Eatnn::new(&bcfg, &train_ds).param_count();

    assert!(deepmf > gbmf, "DeepMF adds towers over GBMF's tables");
    assert!(eatnn > gbmf, "EATNN's three user tables dominate GBMF");
    // EATNN has 3 user tables vs DeepMF's 1 — at equal d it must be larger.
    assert!(
        eatnn > deepmf,
        "EATNN ({eatnn}) should exceed DeepMF ({deepmf})"
    );
}
