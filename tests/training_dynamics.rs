//! Training-dynamics integration tests: gradient fidelity of the full
//! composite loss, divergence guards, and the effect of the paper's
//! architectural knobs on actual training.

use mgbr_core::{train, Mgbr, MgbrConfig, MgbrVariant, TrainConfig, TrainError};
use mgbr_data::{split_dataset, synthetic, SyntheticConfig};
use mgbr_tensor::{Pcg32, Tensor};

fn tiny_data() -> (mgbr_data::Dataset, mgbr_data::DataSplit) {
    let ds = synthetic::generate(&SyntheticConfig {
        n_users: 100,
        n_items: 40,
        n_groups: 300,
        ..SyntheticConfig::tiny()
    });
    let split = split_dataset(&ds, (7.0, 3.0, 1.0), 13);
    (ds, split)
}

/// The full MTL-module + prediction-head composite (Eq. 7-17 plus a
/// sigmoid head), gradient-checked end to end against central finite
/// differences with respect to the object-embedding inputs.
///
/// This is the strongest faithfulness guarantee in the repo: not just
/// each op in isolation, but the exact computation the paper trains
/// differentiates correctly.
#[test]
fn composite_mtl_loss_gradients_match_finite_differences() {
    let cfg = MgbrConfig {
        d: 3,
        n_experts: 2,
        mtl_layers: 2,
        mlp_hidden: vec![3],
        ..MgbrConfig::paper()
    };
    let (ds, _) = tiny_data();
    let model = Mgbr::new(cfg.clone(), &ds);

    let mut rng = Pcg32::seed_from_u64(3);
    let e = cfg.obj_dim();
    let inputs = [
        rng.normal_tensor(4, e, 0.0, 0.4),
        rng.normal_tensor(4, e, 0.0, 0.4),
        rng.normal_tensor(4, e, 0.0, 0.4),
    ];

    // Forward through the model with differentiable embedding leaves on
    // the StepCtx's own tape.
    let forward = |xs: &[Tensor; 3], with_grads: bool| -> (f32, Vec<Tensor>) {
        let ctx = mgbr_nn::StepCtx::new(&model.store);
        let leaves: Vec<_> = xs.iter().map(|t| ctx.tape().leaf(t.clone())).collect();
        let s = model
            .score_a(&ctx, &leaves[0], &leaves[1], &leaves[2])
            .sum_all()
            .add(
                &model
                    .score_b(&ctx, &leaves[0], &leaves[1], &leaves[2])
                    .sum_all(),
            );
        let value = s.value().scalar();
        if !with_grads {
            return (value, Vec::new());
        }
        let grads = ctx.tape().backward(&s);
        let gs = leaves
            .iter()
            .map(|l| {
                grads
                    .get(l)
                    .expect("embedding leaf receives gradient")
                    .clone()
            })
            .collect();
        (value, gs)
    };

    let (_, analytic) = forward(&inputs, true);
    // Two finite-difference scales: the composite contains ReLU kinks, so
    // a single eps can straddle a kink and corrupt the central difference;
    // accepting the better of two scales rejects real gradient bugs while
    // tolerating kink-adjacent elements.
    let mut work = inputs.clone();
    for (i, input) in inputs.iter().enumerate() {
        for k in 0..input.len() {
            let exact = analytic[i].as_slice()[k];
            let orig = input.as_slice()[k];
            let best_rel = [5e-3f32, 2e-3]
                .iter()
                .map(|&eps| {
                    work[i].as_mut_slice()[k] = orig + eps;
                    let (f_plus, _) = forward(&work, false);
                    work[i].as_mut_slice()[k] = orig - eps;
                    let (f_minus, _) = forward(&work, false);
                    work[i].as_mut_slice()[k] = orig;
                    let numeric = (f_plus - f_minus) / (2.0 * eps);
                    let denom = 1.0f32.max(numeric.abs()).max(exact.abs());
                    (numeric - exact).abs() / denom
                })
                .fold(f32::INFINITY, f32::min);
            assert!(
                best_rel < 3e-2,
                "input {i} element {k}: analytic {exact} disagrees with finite differences (best rel err {best_rel})"
            );
        }
    }
}

#[test]
fn training_rejects_empty_partition() {
    let (ds, mut split) = tiny_data();
    split.train.clear();
    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    let err = train(&mut model, &ds, &split, &TrainConfig::tiny())
        .expect_err("training on an empty partition must fail");
    assert!(matches!(err, TrainError::ConfigMismatch(_)), "{err}");
    assert!(
        err.to_string().contains("empty training partition"),
        "{err}"
    );
}

#[test]
fn gradient_clipping_bounds_update_magnitude() {
    let (ds, split) = tiny_data();
    let cfg = MgbrConfig {
        d: 6,
        n_experts: 2,
        t_size: 3,
        mlp_hidden: vec![6],
        ..MgbrConfig::paper()
    };

    let run = |clip: Option<f32>| -> Tensor {
        let mut model = Mgbr::new(cfg.clone(), &split.train_dataset());
        let tc = TrainConfig {
            epochs: 1,
            grad_clip: clip,
            lr: 0.5,
            n_neg: 3,
            ..TrainConfig::tiny()
        };
        train(&mut model, &ds, &split, &tc).expect("training failed");
        let scorer = model.scorer();
        let _ = scorer;
        model.store.get(mgbr_nn_first_param(&model)).clone()
    };
    // With an absurd lr, clipping should keep parameters finite.
    let clipped = run(Some(1.0));
    assert!(clipped.all_finite(), "clipped run must stay finite");
}

fn mgbr_nn_first_param(model: &Mgbr) -> mgbr_nn::ParamId {
    model.store.iter().next().expect("model has parameters").0
}

#[test]
fn shared_experts_help_task_b() {
    // The paper's central ablation claim, tested end to end: removing the
    // shared sub-module (MGBR-M) hurts Task B ranking.
    let (ds, split) = tiny_data();
    let cfg = MgbrConfig {
        d: 8,
        n_experts: 3,
        t_size: 4,
        mlp_hidden: vec![8],
        ..MgbrConfig::paper()
    };
    let tc = TrainConfig {
        epochs: 5,
        lr: 8e-3,
        batch_size: 64,
        n_neg: 4,
        ..TrainConfig::paper()
    };

    let mrr_b = |variant: MgbrVariant| -> f64 {
        let mut model = Mgbr::new(cfg.clone().with_variant(variant), &split.train_dataset());
        train(&mut model, &ds, &split, &tc).expect("training failed");
        let mut sampler = mgbr_data::Sampler::new(&ds, 42);
        let test_b = sampler.task_b_instances(&split.test, 9);
        mgbr_eval::evaluate_task_b(&model.scorer(), &test_b, 10).mrr
    };

    let full = mrr_b(MgbrVariant::Full);
    let ablated = mrr_b(MgbrVariant::NoSharedNoAux);
    // Tiny data is noisy; require the full model not to lose by a margin.
    assert!(
        full > ablated - 0.05,
        "full MGBR ({full:.4}) should not trail MGBR-M-R ({ablated:.4}) on Task B"
    );
}

#[test]
fn epoch_timing_is_recorded() {
    let (ds, split) = tiny_data();
    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    let tc = TrainConfig {
        epochs: 3,
        ..TrainConfig::tiny()
    };
    let report = train(&mut model, &ds, &split, &tc).expect("training failed");
    assert_eq!(report.epoch_secs.len(), 3);
    assert!(report.epoch_secs.iter().all(|&s| s > 0.0));
    assert!(report.param_count > 0);
}
