//! End-to-end integration: synthetic data → preprocessing → split →
//! MGBR training → evaluation, spanning every crate in the workspace.

use mgbr_core::{train, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{filter_min_interactions, split_dataset, synthetic, Sampler, SyntheticConfig};
use mgbr_eval::{evaluate_task_a, evaluate_task_b, GroupBuyScorer};

fn pipeline_cfg() -> SyntheticConfig {
    SyntheticConfig {
        n_users: 150,
        n_items: 60,
        n_groups: 500,
        ..SyntheticConfig::tiny()
    }
}

#[test]
fn full_pipeline_learns_both_tasks() {
    let raw = synthetic::generate(&pipeline_cfg());
    let (dataset, report) = filter_min_interactions(&raw, 5);
    assert!(dataset.groups.len() + report.groups_removed == raw.groups.len());
    assert!(
        !dataset.groups.is_empty(),
        "filter should not empty the dataset"
    );

    let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);
    let cfg = MgbrConfig {
        d: 8,
        n_experts: 3,
        t_size: 4,
        mlp_hidden: vec![8],
        ..MgbrConfig::paper()
    };
    let mut model = Mgbr::new(cfg, &split.train_dataset());
    let tc = TrainConfig {
        epochs: 5,
        lr: 8e-3,
        batch_size: 64,
        n_neg: 4,
        ..TrainConfig::paper()
    };
    let trained = train(&mut model, &dataset, &split, &tc).expect("training failed");

    // Loss must improve over training.
    assert!(
        trained.epoch_losses.last().unwrap() < &trained.epoch_losses[0],
        "losses: {:?}",
        trained.epoch_losses
    );

    // Held-out ranking must beat random on both tasks.
    let mut sampler = Sampler::new(&dataset, 2024);
    let test_a = sampler.task_a_instances(&split.test, 9);
    let test_b = sampler.task_b_instances(&split.test, 9);
    let scorer = model.scorer();
    let ma = evaluate_task_a(&scorer, &test_a, 10);
    let mb = evaluate_task_b(&scorer, &test_b, 10);
    assert!(ma.mrr > 0.32, "Task A MRR {} ≤ random baseline", ma.mrr);
    assert!(mb.mrr > 0.32, "Task B MRR {} ≤ random baseline", mb.mrr);
}

#[test]
fn pipeline_is_fully_deterministic() {
    let run = || {
        let raw = synthetic::generate(&pipeline_cfg());
        let (dataset, _) = filter_min_interactions(&raw, 5);
        let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);
        let cfg = MgbrConfig {
            d: 6,
            n_experts: 2,
            t_size: 3,
            mlp_hidden: vec![6],
            ..MgbrConfig::paper()
        };
        let mut model = Mgbr::new(cfg, &split.train_dataset());
        let tc = TrainConfig {
            epochs: 2,
            batch_size: 64,
            n_neg: 3,
            ..TrainConfig::paper()
        };
        let trained = train(&mut model, &dataset, &split, &tc).expect("training failed");
        let scorer = model.scorer();
        let scores = scorer.score_items(3, &[0, 1, 2, 3, 4]);
        (trained.epoch_losses, scores)
    };
    let (l1, s1) = run();
    let (l2, s2) = run();
    assert_eq!(l1, l2, "training losses must be bit-identical across runs");
    assert_eq!(s1, s2, "scores must be bit-identical across runs");
}

#[test]
fn evaluation_uses_consistent_candidate_lists() {
    let raw = synthetic::generate(&pipeline_cfg());
    let (dataset, _) = filter_min_interactions(&raw, 5);
    let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);
    // Same sampler seed ⇒ identical instances for two different models.
    let mut s1 = Sampler::new(&dataset, 5);
    let mut s2 = Sampler::new(&dataset, 5);
    assert_eq!(
        s1.task_a_instances(&split.test, 9),
        s2.task_a_instances(&split.test, 9)
    );
    assert_eq!(
        s1.task_b_instances(&split.test, 9),
        s2.task_b_instances(&split.test, 9)
    );
}

#[test]
fn scorer_candidate_order_does_not_change_scores() {
    let raw = synthetic::generate(&pipeline_cfg());
    let (dataset, _) = filter_min_interactions(&raw, 5);
    let split = split_dataset(&dataset, (8.0, 1.0, 1.0), 1);
    let cfg = MgbrConfig {
        d: 6,
        n_experts: 2,
        t_size: 3,
        mlp_hidden: vec![6],
        ..MgbrConfig::paper()
    };
    let model = Mgbr::new(cfg, &split.train_dataset());
    let scorer = model.scorer();

    let fwd = scorer.score_items(0, &[1, 2, 3]);
    let rev = scorer.score_items(0, &[3, 2, 1]);
    assert_eq!(fwd[0], rev[2]);
    assert_eq!(fwd[1], rev[1]);
    assert_eq!(fwd[2], rev[0]);
}
