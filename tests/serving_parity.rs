//! Golden serving-parity suite: the tape-free frozen path must produce
//! **bitwise identical** scores to the training-path scorer — for every
//! ablation variant, at several thread counts, through the on-disk
//! artifact, and through every serving front-end (direct scorer,
//! retriever chunks, micro-batcher).
//!
//! This is the headline invariant of the serving subsystem: if any of
//! these fail, frozen deployments would silently drift from what was
//! evaluated offline.

use std::sync::Arc;

use mgbr_core::{FrozenModel, Mgbr, MgbrConfig, MgbrVariant};
use mgbr_data::{synthetic, SyntheticConfig};
use mgbr_eval::GroupBuyScorer;
use mgbr_serve::{BatcherConfig, MicroBatcher, Retriever, Scorer};
use mgbr_tensor::{set_threads, Workspace};

fn build(variant: MgbrVariant) -> Mgbr {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    Mgbr::new(MgbrConfig::tiny().with_variant(variant), &ds)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn golden_frozen_path_matches_training_path_bitwise() {
    // Every variant × thread count × both tasks. Thread count is a pure
    // wall-clock knob (row-banded kernels), so sweeping it here also
    // re-asserts the engine's determinism guarantee on the serve path.
    for variant in MgbrVariant::all() {
        let model = build(variant);
        let scorer = model.scorer();
        let frozen = model.freeze();
        let ws = Workspace::new();
        let items: Vec<u32> = (0..15).collect();
        let idx: Vec<usize> = items.iter().map(|&i| i as usize).collect();
        let parts: Vec<u32> = (0..12).collect();
        let pidx: Vec<usize> = parts.iter().map(|&p| p as usize).collect();

        let ref_a = bits(&scorer.score_items(3, &items));
        let ref_b = bits(&scorer.score_participants(3, 1, &parts));
        for t in [1usize, 2, 4] {
            set_threads(t);
            assert_eq!(
                bits(&frozen.logits_a(&ws, 3, &idx)),
                ref_a,
                "{variant:?} task A at {t} threads"
            );
            assert_eq!(
                bits(&frozen.logits_b(&ws, 3, 1, &pidx)),
                ref_b,
                "{variant:?} task B at {t} threads"
            );
        }
        set_threads(1);
    }
}

#[test]
fn parity_survives_the_on_disk_artifact() {
    // Serving must score from what was *loaded*, so the round trip
    // through bytes is part of the golden contract.
    let model = build(MgbrVariant::Full);
    let scorer = model.scorer();
    let mut buf = Vec::new();
    model.freeze().save(&mut buf).expect("save");
    let loaded = FrozenModel::load(buf.as_slice()).expect("load");
    let ws = Workspace::new();
    let items: Vec<u32> = (0..10).collect();
    let idx: Vec<usize> = items.iter().map(|&i| i as usize).collect();
    for user in 0..5u32 {
        assert_eq!(
            bits(&loaded.logits_a(&ws, user as usize, &idx)),
            bits(&scorer.score_items(user, &items)),
            "user {user}"
        );
    }
}

#[test]
fn fused_serving_plans_match_unfused_through_the_artifact() {
    // The affine-fusion pass is a pure plan rewrite, so it must be
    // bitwise invisible — for every variant, at several thread counts,
    // for both tasks, and on a model loaded back from disk.
    for variant in MgbrVariant::all() {
        let mut buf = Vec::new();
        build(variant).freeze().save(&mut buf).expect("save");
        let fused = FrozenModel::load(buf.as_slice()).expect("load");
        assert!(fused.fused(), "loaded artifacts fuse by default");
        let mut unfused = FrozenModel::load(buf.as_slice()).expect("load");
        unfused.set_fused(false);
        assert!(
            fused.serve_plan_a().ops.len() < unfused.serve_plan_a().ops.len(),
            "{variant:?}: fusion must shrink the Task A plan"
        );

        let ws = Workspace::new();
        let idx: Vec<usize> = (0..15).collect();
        let pidx: Vec<usize> = (0..12).collect();
        for t in [1usize, 2, 4] {
            set_threads(t);
            for user in [0usize, 3, 7] {
                assert_eq!(
                    bits(&fused.logits_a(&ws, user, &idx)),
                    bits(&unfused.logits_a(&ws, user, &idx)),
                    "{variant:?} task A user {user} at {t} threads"
                );
            }
            assert_eq!(
                bits(&fused.logits_b(&ws, 3, 1, &pidx)),
                bits(&unfused.logits_b(&ws, 3, 1, &pidx)),
                "{variant:?} task B at {t} threads"
            );
        }
        set_threads(1);
    }
}

#[test]
fn every_serving_front_end_agrees() {
    // Direct scorer, chunked retriever, and the micro-batcher all sit on
    // the same row-local forward, so all must agree bitwise.
    let model = build(MgbrVariant::Full);
    let frozen = Arc::new(model.freeze());
    let direct = Scorer::new(Arc::clone(&frozen));
    let retriever = Retriever::with_chunk(Arc::clone(&frozen), 4);
    let batcher = MicroBatcher::new(Arc::clone(&frozen), BatcherConfig::default());

    let user = 2usize;
    let hits = retriever
        .top_items(user, frozen.n_items(), None)
        .expect("retrieval");
    assert_eq!(hits.len(), frozen.n_items());
    for hit in &hits {
        let d = direct.score_item(user, hit.id).expect("direct score");
        let b = batcher.score_item(user, hit.id).expect("batched score");
        assert_eq!(
            hit.score.to_bits(),
            d.to_bits(),
            "retriever item {}",
            hit.id
        );
        assert_eq!(b.to_bits(), d.to_bits(), "batcher item {}", hit.id);
    }
    // Retrieval order is a valid descending ranking with stable ties.
    for w in hits.windows(2) {
        assert!(
            w[0].score.total_cmp(&w[1].score).is_ge(),
            "retrieval order must be descending"
        );
    }
}
