//! Plan-serialization integration suite.
//!
//! The execution-plan IR travels over two wire formats: the standalone
//! `MGBRPLAN` container ([`mgbr_plan::plan_to_bytes`]) and the plan
//! section embedded in `MGBRFRZN` v2 artifacts. This suite pins down
//! the three guarantees both must keep:
//!
//! 1. **Round-trip fidelity** — a decoded plan is structurally equal to
//!    the original *and* executes bit-identically on the tensor
//!    interpreter, for every ablation variant and for the fused serving
//!    plans (which exercise the `AffineAct` encoding).
//! 2. **Fail-closed loading** — any single corrupted byte and any
//!    truncation yields a typed [`CheckpointError`], never a malformed
//!    plan reaching the interpreter.
//! 3. **Backward compatibility** — `MGBRFRZN` v1 fixtures (written by
//!    the pre-IR serializer) still load, upgrade to a plan, and score
//!    bitwise-identically to a fresh same-seed model.

use std::path::PathBuf;

use mgbr_core::{FrozenModel, Mgbr, MgbrConfig, MgbrVariant};
use mgbr_data::{synthetic, SyntheticConfig};
use mgbr_nn::CheckpointError;
use mgbr_plan::{execute, plan_from_bytes, plan_to_bytes, Bindings, Plan, TensorBackend};
use mgbr_tensor::{Tensor, Workspace};

fn model(variant: MgbrVariant) -> Mgbr {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    Mgbr::new(MgbrConfig::tiny().with_variant(variant), &ds)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A deterministic dense probe tensor (no RNG: the values only need to
/// be varied, not random).
fn probe(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data = (0..rows * cols)
        .map(|k| ((k * 17 + salt * 29) % 23) as f32 / 23.0 - 0.5)
        .collect();
    Tensor::from_vec(rows, cols, data).unwrap()
}

/// Executes a scoring plan on the tensor interpreter against the frozen
/// model's parameters and returns the outputs' bit patterns.
fn run(plan: &Plan, frozen: &FrozenModel, inputs: &[&Tensor]) -> Vec<Vec<u32>> {
    let ws = Workspace::new();
    let params: Vec<&Tensor> = frozen.params().iter().collect();
    let bindings = Bindings::default();
    execute(plan, inputs, &params, TensorBackend::new(&ws, &bindings))
        .into_iter()
        .map(|t| bits(t.as_slice()))
        .collect()
}

#[test]
fn round_trip_is_bit_identical_for_every_variant() {
    for variant in MgbrVariant::all() {
        let frozen = model(variant).freeze();
        let obj = 2 * frozen.d();
        let (e_u, e_i, e_p) = (probe(4, obj, 0), probe(4, obj, 1), probe(4, obj, 2));
        let inputs = [&e_u, &e_i, &e_p];
        // The stored plan plus both derived serving plans; the latter
        // are affine-fused by default, covering the AffineAct encoding.
        for (tag, plan) in [
            ("stored", frozen.plan()),
            ("serve_a", frozen.serve_plan_a()),
            ("serve_b", frozen.serve_plan_b()),
        ] {
            let back = plan_from_bytes(&plan_to_bytes(plan))
                .unwrap_or_else(|e| panic!("{variant:?}/{tag} failed to round-trip: {e}"));
            assert_eq!(*plan, back, "{variant:?}/{tag} structural round-trip");
            assert_eq!(
                run(plan, &frozen, &inputs),
                run(&back, &frozen, &inputs),
                "{variant:?}/{tag} execution through bytes must be bit-identical"
            );
        }
    }
}

#[test]
fn every_corrupted_plan_byte_fails_closed() {
    let frozen = model(MgbrVariant::Full).freeze();
    let bytes = plan_to_bytes(frozen.plan());
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xFF;
        match plan_from_bytes(&bad) {
            Err(CheckpointError::Format(_)) => {}
            Err(other) => panic!("byte {i}: expected Format error, got {other:?}"),
            Ok(_) => panic!("byte {i}: corrupted plan must not parse"),
        }
    }
}

#[test]
fn truncated_plans_fail_closed() {
    let frozen = model(MgbrVariant::Full).freeze();
    let bytes = plan_to_bytes(frozen.plan());
    for len in 0..bytes.len() {
        match plan_from_bytes(&bytes[..len]) {
            Err(CheckpointError::Format(_)) => {}
            Err(other) => panic!("prefix {len}: expected Format error, got {other:?}"),
            Ok(_) => panic!("prefix {len}: truncated plan must not parse"),
        }
    }
}

/// Corruption inside a v2 artifact's embedded plan section (or anywhere
/// else) is caught before a `FrozenModel` is handed out.
#[test]
fn corrupted_v2_artifacts_fail_closed() {
    let frozen = model(MgbrVariant::Full).freeze();
    let mut buf = Vec::new();
    frozen.save(&mut buf).unwrap();
    // Sample positions across the whole artifact — header, embeddings,
    // plan section, parameters, and the CRC footer.
    let step = (buf.len() / 97).max(1);
    for i in (0..buf.len()).step_by(step).chain([buf.len() - 1]) {
        let mut bad = buf.clone();
        bad[i] ^= 0xFF;
        assert!(
            matches!(
                FrozenModel::load(&bad[..]),
                Err(CheckpointError::Format(_) | CheckpointError::Mismatch(_))
            ),
            "byte {i}: corrupted artifact must fail closed"
        );
    }
    for len in (0..buf.len()).step_by(step) {
        assert!(
            matches!(
                FrozenModel::load(&buf[..len]),
                Err(CheckpointError::Format(_))
            ),
            "prefix {len}: truncated artifact must fail closed"
        );
    }
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

/// The checked-in v1 fixtures were written by the pre-IR serializer
/// from fresh same-seed models, so a correct v1 upgrade (legacy fields
/// → spec → re-lowered plan → canonical parameter order) scores
/// bitwise-identically to freezing the same model today.
#[test]
fn v1_fixtures_load_and_score_bitwise_like_a_fresh_freeze() {
    for (name, variant) in [
        ("frozen_v1_full.bin", MgbrVariant::Full),
        ("frozen_v1_noshared.bin", MgbrVariant::NoShared),
        ("frozen_v1_generic.bin", MgbrVariant::GenericGates),
    ] {
        let old = FrozenModel::load_from_file(fixture(name))
            .unwrap_or_else(|e| panic!("{name} must keep loading: {e}"));
        let fresh = model(variant).freeze();
        assert_eq!(old.variant(), fresh.variant(), "{name} variant label");
        assert_eq!(old.d(), fresh.d(), "{name} d");
        assert_eq!(old.n_users(), fresh.n_users(), "{name} |U|");
        assert_eq!(old.n_items(), fresh.n_items(), "{name} |I|");
        assert_eq!(
            old.plan(),
            fresh.plan(),
            "{name} must upgrade to the canonical plan"
        );

        let ws = Workspace::new();
        let idx: Vec<usize> = (0..12).collect();
        for user in [0usize, 3, 7] {
            assert_eq!(
                bits(&old.logits_a(&ws, user, &idx)),
                bits(&fresh.logits_a(&ws, user, &idx)),
                "{name} task A user {user}"
            );
        }
        let pidx: Vec<usize> = (1..9).collect();
        assert_eq!(
            bits(&old.logits_b(&ws, 2, 4, &pidx)),
            bits(&fresh.logits_b(&ws, 2, 4, &pidx)),
            "{name} task B"
        );
    }
}
