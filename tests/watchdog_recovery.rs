//! Divergence-watchdog property suite.
//!
//! Proves the training-stability subsystem's three headline guarantees
//! end to end, with faults injected through `mgbr_nn::NumericFault`:
//!
//! 1. **Recovery** — a NaN injected at *any* step of a multi-epoch run
//!    still ends with a finite loss and exactly the expected number of
//!    recoveries.
//! 2. **Zero overhead on the trajectory** — with no faults, a
//!    watchdog-enabled run is bitwise identical to a watchdog-disabled
//!    run at 1, 2, and 4 threads.
//! 3. **Fail-closed** — exhausting `max_recoveries` yields
//!    `TrainError::Diverged` carrying the anomaly report, and leaves the
//!    last good checkpoint on disk intact and loadable.

use std::path::PathBuf;

use mgbr_core::{train, AnomalyKind, Mgbr, MgbrConfig, TrainConfig, TrainError, WatchdogConfig};
use mgbr_data::{split_dataset, synthetic, DataSplit, Dataset, SyntheticConfig};
use mgbr_nn::checkpoint::load_checkpoint_from_file;
use mgbr_nn::{NumericFault, ParamStore};

fn fixture() -> (Dataset, DataSplit) {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
    (ds, split)
}

fn params_of(store: &ParamStore) -> Vec<u32> {
    store
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits()))
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mgbr_watchdog_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Steps per epoch for the tiny fixture under `TrainConfig::tiny`,
/// derived from an instrumented clean run so the fault sweep below can
/// target every step of the run.
fn steps_per_epoch(ds: &Dataset, split: &DataSplit, tc: &TrainConfig) -> usize {
    let mut model = Mgbr::new(MgbrConfig::tiny(), ds);
    let report = train(
        &mut model,
        ds,
        split,
        &TrainConfig {
            epochs: 1,
            ..tc.clone()
        },
    )
    .unwrap();
    report.steps
}

/// Property 1: a NaN gradient injected at every step `k` of a run in turn
/// always recovers — the run completes with finite losses, finite
/// parameters, and exactly one recovery (the one-shot fault cannot
/// refire after the rollback).
#[test]
fn nan_at_any_step_recovers_to_finite_loss() {
    let (ds, split) = fixture();
    let base = TrainConfig::tiny();
    let per_epoch = steps_per_epoch(&ds, &split, &base);
    let epochs = 2usize;
    let total_steps = per_epoch * epochs;
    assert!(total_steps >= 20, "fixture too small to sweep 20 steps");

    // Sweep the full run, capped at 20 evenly-spread steps for runtime.
    let stride = total_steps.div_ceil(20).max(1);
    for k in (0..total_steps).step_by(stride) {
        let tc = TrainConfig {
            epochs,
            numeric_fault: Some(NumericFault::poison_gradient(k, 0, 0, f32::NAN)),
            ..base.clone()
        };
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let report = train(&mut model, &ds, &split, &tc)
            .unwrap_or_else(|e| panic!("fault at step {k} did not recover: {e}"));
        assert_eq!(report.recoveries, 1, "fault at step {k}");
        assert_eq!(report.anomalies.len(), 1, "fault at step {k}");
        assert_eq!(
            report.anomalies[0].kind,
            AnomalyKind::NonFiniteGradient,
            "fault at step {k}"
        );
        assert_eq!(
            report.anomalies[0].step, k,
            "report must carry the faulting step"
        );
        assert_eq!(report.epoch_losses.len(), epochs);
        assert!(
            report.epoch_losses.iter().all(|l| l.is_finite()),
            "fault at step {k}: losses {:?}",
            report.epoch_losses
        );
        assert!(model.store.all_finite(), "fault at step {k}");
    }
}

/// Property 2: with zero faults, enabling the watchdog changes nothing —
/// losses and final parameters are bitwise identical to a
/// watchdog-disabled run, at every thread count. (Skipped when
/// `MGBR_THREADS` pins the thread knob, since `threads` in the config is
/// then ignored by design.)
#[test]
fn fault_free_run_bitwise_identical_to_disabled_watchdog_across_threads() {
    if std::env::var("MGBR_THREADS").is_ok() {
        return;
    }
    let (ds, split) = fixture();
    let run = |threads: usize, wd: WatchdogConfig| {
        let tc = TrainConfig {
            epochs: 2,
            threads,
            watchdog: wd,
            ..TrainConfig::tiny()
        };
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let report = train(&mut model, &ds, &split, &tc).unwrap();
        (report.epoch_losses, params_of(&model.store))
    };
    for threads in [1usize, 2, 4] {
        let (l_on, p_on) = run(threads, WatchdogConfig::default());
        let (l_off, p_off) = run(threads, WatchdogConfig::disabled());
        assert_eq!(l_on, l_off, "losses differ at {threads} threads");
        assert_eq!(p_on, p_off, "parameters differ at {threads} threads");
    }
    mgbr_tensor::set_threads(1);
}

/// Property 3: a persistent fault that refires on every retry exhausts
/// `max_recoveries` and fails closed with `TrainError::Diverged` carrying
/// the anomaly report — while the last good checkpoint written before
/// the divergence stays intact and loadable on disk.
#[test]
fn exhausted_recoveries_fail_closed_and_preserve_checkpoint() {
    let (ds, split) = fixture();
    let dir = scratch("fail_closed");
    let path = dir.join("run.ckpt");
    let _ = std::fs::remove_file(&path);

    // Epoch 0 completes cleanly and checkpoints; the persistent fault
    // poisons epoch 1 on every retry.
    let per_epoch = steps_per_epoch(&ds, &split, &TrainConfig::tiny());
    let max_recoveries = 2usize;
    let tc = TrainConfig {
        epochs: 2,
        watchdog: WatchdogConfig {
            max_recoveries,
            ..WatchdogConfig::default()
        },
        numeric_fault: Some(
            NumericFault::poison_param(per_epoch + 1, 0, 0, f32::INFINITY).persistent(),
        ),
        ..TrainConfig::tiny()
    }
    .with_checkpointing(&path, 1);

    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    let err = train(&mut model, &ds, &split, &tc).unwrap_err();
    match &err {
        TrainError::Diverged { report } => {
            assert_eq!(report.kind, AnomalyKind::NonFiniteParam);
            assert_eq!(report.recoveries, max_recoveries);
            assert_eq!(report.epoch, 1, "fault lands in epoch 1");
            assert_eq!(report.step, per_epoch + 1);
            assert!(report.tensor.is_some(), "report names the tensor");
            assert_eq!(report.first_index, Some(0));
        }
        other => panic!("expected Diverged, got {other}"),
    }
    // The error's Display carries the full anomaly context.
    let msg = err.to_string();
    assert!(msg.contains("non-finite parameter"), "{msg}");
    assert!(msg.contains("epoch 1"), "{msg}");

    // The epoch-0 checkpoint is intact: it loads transactionally into a
    // fresh model and carries the pre-divergence training state.
    let mut fresh = Mgbr::new(MgbrConfig::tiny(), &ds);
    let loaded = load_checkpoint_from_file(&mut fresh.store, &path)
        .expect("last good checkpoint must stay loadable");
    let state = loaded.state.expect("v2 checkpoint carries state");
    assert_eq!(state.epoch, 1, "checkpoint covers the one clean epoch");
    assert!(fresh.store.all_finite());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Divergence without any recovery budget (`max_recoveries = 0`) fails
/// closed immediately, and the report says zero recoveries were consumed.
#[test]
fn zero_recovery_budget_fails_on_first_anomaly() {
    let (ds, split) = fixture();
    let tc = TrainConfig {
        epochs: 1,
        watchdog: WatchdogConfig {
            max_recoveries: 0,
            ..WatchdogConfig::default()
        },
        numeric_fault: Some(NumericFault::spike_loss(0, f32::NAN)),
        ..TrainConfig::tiny()
    };
    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    let err = train(&mut model, &ds, &split, &tc).unwrap_err();
    match err {
        TrainError::Diverged { report } => {
            assert_eq!(report.kind, AnomalyKind::NonFiniteLoss);
            assert_eq!(report.recoveries, 0);
            assert_eq!(report.step, 0);
        }
        other => panic!("expected Diverged, got {other}"),
    }
}

/// Recovery composes with checkpoint/resume: a run that recovered from a
/// fault still writes checkpoints, and its final parameters stay finite
/// and reloadable.
#[test]
fn recovered_run_checkpoints_remain_usable() {
    let (ds, split) = fixture();
    let dir = scratch("recovered_ckpt");
    let path = dir.join("rec.ckpt");
    let _ = std::fs::remove_file(&path);

    let tc = TrainConfig {
        epochs: 2,
        numeric_fault: Some(NumericFault::poison_gradient(2, 0, 0, f32::NAN)),
        ..TrainConfig::tiny()
    }
    .with_checkpointing(&path, 1);
    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    let report = train(&mut model, &ds, &split, &tc).unwrap();
    assert_eq!(report.recoveries, 1);

    let mut fresh = Mgbr::new(MgbrConfig::tiny(), &ds);
    let loaded = load_checkpoint_from_file(&mut fresh.store, &path).unwrap();
    assert_eq!(loaded.state.expect("v2 state").epoch, 2);
    assert_eq!(params_of(&model.store), params_of(&fresh.store));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property 4: for a NaN injected at step `k`, the anomaly report
/// round-trips through the flight-recorder journal — kind, step, epoch,
/// and recovery count match the in-memory report, and the anomaly event
/// precedes its recovery event. (Events from concurrently-running traced
/// tests may interleave, so the check is subsequence inclusion, not file
/// equality.)
#[test]
fn anomaly_events_round_trip_through_journal_in_order() {
    let (ds, split) = fixture();
    let dir = scratch("journal");
    let base = TrainConfig::tiny();
    let per_epoch = steps_per_epoch(&ds, &split, &base);
    for k in [0usize, 1, per_epoch, per_epoch + 1] {
        let trace = dir.join(format!("k{k}.jsonl"));
        let tc = TrainConfig {
            epochs: 2,
            trace_path: Some(trace.clone()),
            numeric_fault: Some(NumericFault::poison_gradient(k, 0, 0, f32::NAN)),
            ..base.clone()
        };
        let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
        let report = train(&mut model, &ds, &split, &tc)
            .unwrap_or_else(|e| panic!("fault at step {k} did not recover: {e}"));
        assert_eq!(report.anomalies.len(), 1, "fault at step {k}");
        let want = &report.anomalies[0];

        let records: Vec<mgbr_json::Json> = std::fs::read_to_string(&trace)
            .unwrap()
            .lines()
            .map(|l| mgbr_json::Json::parse(l).expect("journal line parses"))
            .collect();
        let anomaly_at = records
            .iter()
            .position(|r| {
                r.get("name").and_then(mgbr_json::Json::as_str) == Some("watchdog.anomaly")
                    && r.get("args")
                        .and_then(|a| a.get("step"))
                        .and_then(mgbr_json::Json::as_usize)
                        == Some(want.step)
            })
            .unwrap_or_else(|| panic!("anomaly at step {k} missing from journal"));
        let args = records[anomaly_at].get("args").unwrap();
        assert_eq!(
            args.get("kind").and_then(mgbr_json::Json::as_str),
            Some(want.kind.to_string().as_str()),
            "fault at step {k}"
        );
        assert_eq!(
            args.get("epoch").and_then(mgbr_json::Json::as_usize),
            Some(want.epoch),
            "fault at step {k}"
        );
        assert!(
            records[anomaly_at + 1..].iter().any(|r| {
                r.get("name").and_then(mgbr_json::Json::as_str) == Some("watchdog.recover")
            }),
            "recovery event must follow the anomaly for step {k}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
