//! Crash-safe checkpoint/resume integration suite.
//!
//! Proves the two headline guarantees end to end:
//!
//! 1. **Bitwise-identical continuation** — a run killed at any epoch
//!    boundary and resumed from its checkpoint reaches final parameters
//!    bit-for-bit equal to an uninterrupted run, at any thread count and
//!    with Adam warm restarts on or off.
//! 2. **Fail-closed integrity** — every partial or corrupt checkpoint
//!    (fault-injected via `mgbr_nn::failpoint::IoFault`) is rejected with
//!    a typed `CheckpointError` without mutating the receiving store,
//!    while the previous good checkpoint stays loadable.

use std::path::PathBuf;

use mgbr_core::{train, train_with_validation, Mgbr, MgbrConfig, TrainConfig, TrainError};
use mgbr_data::{split_dataset, synthetic, DataSplit, Dataset, SyntheticConfig};
use mgbr_nn::checkpoint::{
    load_checkpoint, load_checkpoint_from_file, save_checkpoint, save_checkpoint_atomic, AdamState,
    CheckpointError, FormatNote, TrainState,
};
use mgbr_nn::failpoint::{Fault, IoFault};
use mgbr_nn::ParamStore;
use mgbr_tensor::{Pcg32, Tensor};

fn fixture() -> (Dataset, DataSplit) {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    let split = split_dataset(&ds, (7.0, 3.0, 1.0), 11);
    (ds, split)
}

fn params_of(model: &Mgbr) -> Vec<f32> {
    model
        .store
        .iter()
        .flat_map(|(_, _, t)| t.as_slice().to_vec())
        .collect()
}

/// A unique scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mgbr_resume_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_tc(threads: usize, warm: bool) -> TrainConfig {
    TrainConfig {
        epochs: 4,
        threads,
        adam_warm_restarts: warm,
        ..TrainConfig::tiny()
    }
}

/// Kill-at-epoch-k → resume → bitwise-equal parameters, swept over
/// thread counts and Adam warm restarts. (Skipped when `MGBR_THREADS`
/// pins the thread knob, since `threads` in the config is then ignored
/// by design.)
#[test]
fn killed_and_resumed_matches_uninterrupted_bitwise() {
    if std::env::var("MGBR_THREADS").is_ok() {
        return;
    }
    let (ds, split) = fixture();
    let dir = scratch("kill_resume");

    for threads in [1usize, 2, 4] {
        for warm in [true, false] {
            // Reference: uninterrupted 4-epoch run, no checkpointing.
            let tc_full = base_tc(threads, warm);
            let mut reference = Mgbr::new(MgbrConfig::tiny(), &ds);
            let full_report = train(&mut reference, &ds, &split, &tc_full).unwrap();
            let want = params_of(&reference);

            for kill_at in 1..4usize {
                let path = dir.join(format!("t{threads}_w{warm}_k{kill_at}.ckpt"));
                let _ = std::fs::remove_file(&path);

                // "Killed" run: stops after `kill_at` epochs, checkpointing
                // every epoch.
                let tc_killed = TrainConfig {
                    epochs: kill_at,
                    ..base_tc(threads, warm).with_checkpointing(&path, 1)
                };
                let mut victim = Mgbr::new(MgbrConfig::tiny(), &ds);
                train(&mut victim, &ds, &split, &tc_killed).unwrap();
                assert!(path.exists(), "kill run must leave a checkpoint");

                // Resumed run: fresh process state, full epoch budget.
                let tc_resume = base_tc(threads, warm).with_checkpointing(&path, 1);
                let mut resumed = Mgbr::new(MgbrConfig::tiny(), &ds);
                let resumed_report = train(&mut resumed, &ds, &split, &tc_resume).unwrap();

                assert_eq!(
                    resumed_report.epoch_losses.len(),
                    4 - kill_at,
                    "resume must continue, not retrain, after kill at {kill_at}"
                );
                assert_eq!(
                    full_report.epoch_losses[kill_at..],
                    resumed_report.epoch_losses[..],
                    "resumed losses diverged (threads={threads}, warm={warm}, kill={kill_at})"
                );
                assert_eq!(
                    want,
                    params_of(&resumed),
                    "final parameters diverged (threads={threads}, warm={warm}, kill={kill_at})"
                );
            }
        }
    }
    mgbr_tensor::set_threads(1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint written at one thread count resumes bit-identically at
/// another — the determinism guarantee composes with crash recovery.
#[test]
fn resume_across_thread_counts_is_bitwise_identical() {
    if std::env::var("MGBR_THREADS").is_ok() {
        return;
    }
    let (ds, split) = fixture();
    let dir = scratch("cross_threads");
    let path = dir.join("cross.ckpt");

    let mut reference = Mgbr::new(MgbrConfig::tiny(), &ds);
    train(&mut reference, &ds, &split, &base_tc(1, true)).unwrap();

    let tc_killed = TrainConfig {
        epochs: 2,
        ..base_tc(1, true).with_checkpointing(&path, 1)
    };
    let mut victim = Mgbr::new(MgbrConfig::tiny(), &ds);
    train(&mut victim, &ds, &split, &tc_killed).unwrap();

    // Resume the 1-thread checkpoint on 4 threads.
    let tc_resume = base_tc(4, true).with_checkpointing(&path, 1);
    let mut resumed = Mgbr::new(MgbrConfig::tiny(), &ds);
    train(&mut resumed, &ds, &split, &tc_resume).unwrap();
    assert_eq!(params_of(&reference), params_of(&resumed));

    mgbr_tensor::set_threads(1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Validation training with early stopping also resumes: the checkpointed
/// metric history replays into the stopper and the combined history
/// matches the uninterrupted run exactly.
#[test]
fn validation_training_resumes_with_history() {
    let (ds, split) = fixture();
    let dir = scratch("validation");
    let path = dir.join("val.ckpt");

    let tc_full = TrainConfig {
        epochs: 4,
        ..TrainConfig::tiny()
    };
    let mut reference = Mgbr::new(MgbrConfig::tiny(), &ds);
    let (_, want_history) =
        train_with_validation(&mut reference, &ds, &split, &tc_full, 50, 0.0).unwrap();

    let tc_killed = TrainConfig {
        epochs: 2,
        ..tc_full.clone().with_checkpointing(&path, 1)
    };
    let mut victim = Mgbr::new(MgbrConfig::tiny(), &ds);
    train_with_validation(&mut victim, &ds, &split, &tc_killed, 50, 0.0).unwrap();

    let tc_resume = tc_full.with_checkpointing(&path, 1);
    let mut resumed = Mgbr::new(MgbrConfig::tiny(), &ds);
    let (report, history) =
        train_with_validation(&mut resumed, &ds, &split, &tc_resume, 50, 0.0).unwrap();

    assert_eq!(report.epoch_losses.len(), 2, "only epochs 2..4 re-run");
    let metrics = |h: &[mgbr_core::ValEntry]| h.iter().map(|e| e.metric).collect::<Vec<_>>();
    assert_eq!(
        metrics(&want_history),
        metrics(&history),
        "full metric curve must match bitwise"
    );
    // Provenance: the uninterrupted run evaluated everything itself; the
    // resumed run replayed epochs 0..2 from the checkpoint.
    assert!(want_history.iter().all(|e| !e.replayed));
    let replayed: Vec<bool> = history.iter().map(|e| e.replayed).collect();
    assert_eq!(replayed, vec![true, true, false, false]);
    assert_eq!(params_of(&reference), params_of(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming under a different trajectory config must refuse loudly —
/// with a typed error a sweep can catch, not a panic.
#[test]
fn resume_with_mismatched_config_is_typed_error() {
    let (ds, split) = fixture();
    let dir = scratch("fingerprint");
    let path = dir.join("fp.ckpt");
    let tc = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny().with_checkpointing(&path, 1)
    };
    let mut model = Mgbr::new(MgbrConfig::tiny(), &ds);
    train(&mut model, &ds, &split, &tc).unwrap();

    let tc_other = TrainConfig {
        seed: tc.seed + 1,
        ..tc
    };
    let mut other = Mgbr::new(MgbrConfig::tiny(), &ds);
    let err = train(&mut other, &ds, &split, &tc_other).unwrap_err();
    assert!(matches!(err, TrainError::ConfigMismatch(_)), "{err}");
    assert!(err.to_string().contains("different TrainConfig"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Format property tests (in-memory, fault-injected via IoFault)
// ---------------------------------------------------------------------------

/// Builds a random store + train state from a seed.
fn random_store_and_state(seed: u64) -> (ParamStore, TrainState) {
    let mut rng = Pcg32::seed_from_u64(seed);
    let n_params = 1 + rng.below(4);
    let mut store = ParamStore::new();
    let mut m = Vec::new();
    let mut v = Vec::new();
    for i in 0..n_params {
        let rows = 1 + rng.below(8);
        let cols = 1 + rng.below(8);
        store.add(format!("p{i}.w"), rng.normal_tensor(rows, cols, 0.0, 1.0));
        if rng.below(2) == 0 {
            m.push(Some(rng.normal_tensor(rows, cols, 0.0, 0.1)));
            v.push(Some(rng.uniform_tensor(rows, cols, 0.0, 0.01)));
        } else {
            m.push(None);
            v.push(None);
        }
    }
    let mut state_rng = Pcg32::seed_from_u64(seed ^ 0xabcd);
    if rng.below(2) == 0 {
        let _ = state_rng.normal(); // park a Box-Muller spare
    }
    let state = TrainState {
        epoch: rng.below(100) as u64,
        step: rng.below(100_000) as u64,
        config_fingerprint: rng.next_u64(),
        rng: Some(state_rng.export_state()),
        val_history: (0..rng.below(6)).map(|i| 0.1 * i as f64).collect(),
        adam: Some(AdamState {
            t: rng.below(10_000) as u64,
            m,
            v,
        }),
    };
    (store, state)
}

fn store_bits(store: &ParamStore) -> Vec<Vec<u32>> {
    store
        .iter()
        .map(|(_, _, t)| t.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// Clones a store's registration (names/shapes) with zeroed values.
fn blank_like(store: &ParamStore) -> ParamStore {
    let mut blank = ParamStore::new();
    for (_, name, t) in store.iter() {
        blank.add(name.to_string(), Tensor::zeros(t.rows(), t.cols()));
    }
    blank
}

#[test]
fn v2_roundtrip_is_bit_exact_for_random_stores() {
    for seed in 0..25u64 {
        let (store, state) = random_store_and_state(seed);
        let mut buf = Vec::new();
        save_checkpoint(&store, &state, &mut buf).unwrap();

        let mut restored = blank_like(&store);
        let loaded = load_checkpoint(&mut restored, buf.as_slice()).unwrap();
        assert_eq!(store_bits(&store), store_bits(&restored), "seed {seed}");
        let got = loaded.state.expect("v2 must carry state");
        assert_eq!(got, state, "seed {seed}");
    }
}

/// Offsets to probe: exhaustive for small buffers, strided (plus both
/// edges, where the header and CRC footer live) for large ones.
fn probe_offsets(len: usize, budget: usize) -> Vec<usize> {
    let stride = len.div_ceil(budget).max(1);
    let mut offs: Vec<usize> = (0..len).step_by(stride).collect();
    offs.extend((0..len.min(24)).chain(len.saturating_sub(24)..len));
    offs.sort_unstable();
    offs.dedup();
    offs
}

#[test]
fn any_truncation_fails_closed_without_mutating_store() {
    for seed in 0..5u64 {
        let (store, state) = random_store_and_state(seed);
        // Produce each truncated artifact through the fault-injection
        // writer — the writer "succeeds", the file is torn.
        let mut full = Vec::new();
        save_checkpoint(&store, &state, &mut full).unwrap();

        for cut in probe_offsets(full.len(), 512) {
            let mut sink = IoFault::new(Vec::new(), Fault::Truncate { at: cut as u64 });
            save_checkpoint(&store, &state, &mut sink).unwrap();
            let torn = sink.into_inner();
            assert_eq!(torn.len(), cut, "seed {seed}: tear at {cut}");

            let mut victim = blank_like(&store);
            let before = store_bits(&victim);
            let err = load_checkpoint(&mut victim, torn.as_slice())
                .expect_err("torn checkpoint must not load");
            assert!(
                matches!(
                    err,
                    CheckpointError::Format(_) | CheckpointError::Mismatch(_)
                ),
                "seed {seed}, cut {cut}: unexpected error class: {err}"
            );
            assert_eq!(
                before,
                store_bits(&victim),
                "seed {seed}, cut {cut}: failed load mutated the store"
            );
        }
    }
}

#[test]
fn any_single_bit_flip_fails_closed() {
    for seed in 0..3u64 {
        let (store, state) = random_store_and_state(seed);
        let mut full = Vec::new();
        save_checkpoint(&store, &state, &mut full).unwrap();

        // CRC-32 detects all single-bit errors; probe every bit at the
        // sampled offsets (headers, bodies, and the footer itself).
        for byte in probe_offsets(full.len(), 192) {
            for bit in 0..8u8 {
                let mut sink = IoFault::new(
                    Vec::new(),
                    Fault::BitFlip {
                        at: byte as u64,
                        bit,
                    },
                );
                save_checkpoint(&store, &state, &mut sink).unwrap();
                let corrupt = sink.into_inner();
                assert_ne!(corrupt, full, "fault writer must have flipped a bit");

                let mut victim = blank_like(&store);
                let before = store_bits(&victim);
                let err = load_checkpoint(&mut victim, corrupt.as_slice())
                    .expect_err("corrupt checkpoint must not load");
                assert!(
                    matches!(
                        err,
                        CheckpointError::Format(_) | CheckpointError::Mismatch(_)
                    ),
                    "seed {seed}, byte {byte}, bit {bit}: {err}"
                );
                assert_eq!(before, store_bits(&victim));
            }
        }
    }
}

#[test]
fn injected_write_error_surfaces_as_io() {
    let (store, state) = random_store_and_state(1);
    let mut sink = IoFault::new(Vec::new(), Fault::Error { at: 40 });
    let err = save_checkpoint(&store, &state, &mut sink).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    assert!(sink.fired());
}

/// A crash mid-save (simulated with the fault-injected writer producing a
/// torn temp file) leaves the previous good checkpoint loadable.
#[test]
fn prior_checkpoint_survives_torn_replacement_attempt() {
    let (store, state) = random_store_and_state(7);
    let dir = scratch("prior_survives");
    let path = dir.join("good.ckpt");
    save_checkpoint_atomic(&store, &state, &path).unwrap();

    // A later save crashes mid-write: all the atomic protocol leaves
    // behind is a torn `.tmp` — the real file is untouched.
    let mut sink = IoFault::new(Vec::new(), Fault::Truncate { at: 33 });
    save_checkpoint(&store, &state, &mut sink).unwrap();
    let tmp = dir.join("good.ckpt.tmp");
    std::fs::write(&tmp, sink.into_inner()).unwrap();

    let mut victim = blank_like(&store);
    let err = load_checkpoint_from_file(&mut victim, &tmp).unwrap_err();
    assert!(matches!(err, CheckpointError::Format(_)), "{err}");

    let loaded = load_checkpoint_from_file(&mut victim, &path).unwrap();
    assert_eq!(loaded.state.as_ref(), Some(&state));
    assert_eq!(store_bits(&store), store_bits(&victim));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// v1 → v2 compatibility
// ---------------------------------------------------------------------------

fn v1_fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/v1_params.ckpt")
}

/// The committed v1 fixture still restores parameters — and reports the
/// typed legacy note instead of pretending to carry training state.
#[test]
fn v1_fixture_loads_params_with_legacy_note() {
    let mut store = ParamStore::new();
    store.add("layer.w", Tensor::zeros(3, 4));
    store.add("layer.b", Tensor::zeros(1, 4));

    let loaded = load_checkpoint_from_file(&mut store, v1_fixture_path()).unwrap();
    assert_eq!(loaded.version, 1);
    assert!(loaded.state.is_none(), "v1 has no optimizer/RNG state");
    assert_eq!(loaded.note, Some(FormatNote::LegacyV1));

    let ids: Vec<_> = store.iter().map(|(id, _, _)| id).collect();
    let want_w: Vec<f32> = (0..12).map(|i| i as f32 * 0.5 - 3.0).collect();
    assert_eq!(store.get(ids[0]).as_slice(), &want_w[..]);
    assert_eq!(
        store.get(ids[1]).as_slice(),
        &[100.0, 101.5, -102.25, 103.0]
    );
}

/// The v1 fixture refuses to load into a differently-shaped store.
#[test]
fn v1_fixture_rejects_wrong_store() {
    let mut store = ParamStore::new();
    store.add("layer.w", Tensor::zeros(4, 3));
    store.add("layer.b", Tensor::zeros(1, 4));
    let err = load_checkpoint_from_file(&mut store, v1_fixture_path()).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
}

/// Trainer resume demands training state: pointing it at a v1 file is a
/// loud typed error, not a silent cold start.
#[test]
fn trainer_resume_from_v1_file_is_typed_error() {
    let (ds, split) = fixture();
    let dir = scratch("v1_resume");
    let path = dir.join("legacy.ckpt");

    // Write a v1 (params-only) file for exactly this model's store.
    let model = Mgbr::new(MgbrConfig::tiny(), &ds);
    mgbr_nn::save_params_to_file(&model.store, &path).unwrap();

    let tc = TrainConfig {
        epochs: 1,
        ..TrainConfig::tiny().with_checkpointing(&path, 1)
    };
    let mut fresh = Mgbr::new(MgbrConfig::tiny(), &ds);
    let err = train(&mut fresh, &ds, &split, &tc).unwrap_err();
    assert!(matches!(err, TrainError::ConfigMismatch(_)), "{err}");
    assert!(err.to_string().contains("legacy v1"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
