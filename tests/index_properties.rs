//! Property suite for the pruned retrieval index (ISSUE 7): across
//! random generator seeds and **all 6 ablation variants**, full-probe
//! retrieval must return the identical id set and bitwise-identical
//! scores to the exhaustive [`Retriever`]; partial-probe recall@K must
//! be monotone non-decreasing in `nprobe`; and pruned retrieval must be
//! bitwise stable across kernel thread counts.

use std::sync::Arc;

use mgbr_core::{FrozenModel, Mgbr, MgbrConfig, MgbrVariant};
use mgbr_data::{synthetic, SyntheticConfig};
use mgbr_serve::{recall_at_k, IndexConfig, ItemIndex, Retriever};
use mgbr_tensor::set_threads;

fn frozen(variant: MgbrVariant, seed: u64) -> Arc<FrozenModel> {
    let ds = synthetic::generate(&SyntheticConfig {
        seed,
        ..SyntheticConfig::tiny()
    });
    Arc::new(Mgbr::new(MgbrConfig::tiny().with_variant(variant), &ds).freeze())
}

fn index_cfg() -> IndexConfig {
    IndexConfig {
        n_clusters: 5,
        ..IndexConfig::default()
    }
}

/// Full probe == exhaustive, exactly: identical id sequence, bitwise
/// identical scores, for every variant × seed × several users and ks —
/// including k beyond the catalog and tie-heavy small catalogs.
#[test]
fn full_probe_is_bitwise_identical_to_exhaustive_for_all_variants() {
    for variant in MgbrVariant::all() {
        for seed in [7u64, 20260809] {
            let model = frozen(variant, seed);
            let exhaustive = Retriever::new(Arc::clone(&model));
            let index = ItemIndex::build(Arc::clone(&model), index_cfg());
            assert!(index.n_clusters() >= 1);
            let n_items = model.n_items();
            for user in [0usize, 13, 31, 59] {
                for k in [1usize, 10, n_items, n_items + 5] {
                    let exact = exhaustive.top_items(user, k, None).expect("exhaustive");
                    let pruned = index
                        .top_items(user, k, index.n_clusters())
                        .expect("full probe");
                    assert_eq!(
                        exact.len(),
                        pruned.len(),
                        "{variant:?} seed {seed} user {user} k {k}"
                    );
                    for (e, p) in exact.iter().zip(&pruned) {
                        assert_eq!(e.id, p.id, "{variant:?} seed {seed} user {user} k {k}");
                        assert_eq!(
                            e.score.to_bits(),
                            p.score.to_bits(),
                            "{variant:?} seed {seed} user {user} k {k} id {}",
                            e.id
                        );
                    }
                }
            }
        }
    }
}

/// Recall@K against the exhaustive ranking is monotone non-decreasing
/// in `nprobe` (candidate sets are nested; exact rerank under one total
/// order), reaching exactly 1.0 at full probe.
#[test]
fn partial_probe_recall_is_monotone_in_nprobe() {
    for variant in MgbrVariant::all() {
        let model = frozen(variant, 99);
        let exhaustive = Retriever::new(Arc::clone(&model));
        let index = ItemIndex::build(Arc::clone(&model), index_cfg());
        for user in [2usize, 17, 44] {
            let exact = exhaustive.top_items(user, 10, None).expect("exhaustive");
            let mut prev = 0.0f64;
            for nprobe in 1..=index.n_clusters() {
                let pruned = index.top_items(user, 10, nprobe).expect("pruned");
                let r = recall_at_k(&pruned, &exact);
                assert!(
                    r >= prev,
                    "{variant:?} user {user}: recall dropped {prev} -> {r} at nprobe {nprobe}"
                );
                prev = r;
            }
            assert_eq!(prev, 1.0, "{variant:?} user {user}: full probe recall");
        }
    }
}

/// Pruned scores come from the same row-local forward, so they are
/// bitwise identical at any kernel thread count, for any nprobe.
#[test]
fn pruned_retrieval_is_bitwise_stable_across_kernel_threads() {
    let model = frozen(MgbrVariant::Full, 5);
    let index = ItemIndex::build(Arc::clone(&model), index_cfg());
    for nprobe in [1usize, 2, index.n_clusters()] {
        let reference: Vec<(usize, u32)> = index
            .top_items(3, 8, nprobe)
            .expect("reference")
            .iter()
            .map(|h| (h.id, h.score.to_bits()))
            .collect();
        for t in [1usize, 2, 4] {
            set_threads(t);
            let got: Vec<(usize, u32)> = index
                .top_items(3, 8, nprobe)
                .expect("retrieval")
                .iter()
                .map(|h| (h.id, h.score.to_bits()))
                .collect();
            assert_eq!(got, reference, "nprobe {nprobe} at {t} threads");
        }
        set_threads(1);
    }
}

/// The index build is fully deterministic: same model, same config →
/// identical clusters and medoids, for every variant.
#[test]
fn index_build_is_deterministic_for_all_variants() {
    for variant in MgbrVariant::all() {
        let model = frozen(variant, 1234);
        let a = ItemIndex::build(Arc::clone(&model), index_cfg());
        let b = ItemIndex::build(Arc::clone(&model), index_cfg());
        assert_eq!(a.cluster_sizes(), b.cluster_sizes(), "{variant:?}");
        assert_eq!(a.medoids(), b.medoids(), "{variant:?}");
        let total: usize = a.cluster_sizes().iter().sum();
        assert_eq!(total, model.n_items(), "{variant:?}: clusters partition");
    }
}

/// Pruning narrows candidates: with few probes the index scores fewer
/// items than the catalog (the point of the coarse quantizer), yet the
/// returned hits are always a subset of the exhaustive ranking's ids
/// with exact scores.
#[test]
fn pruned_hits_carry_exact_scores() {
    let model = frozen(MgbrVariant::Full, 3);
    let exhaustive = Retriever::new(Arc::clone(&model));
    let index = ItemIndex::build(Arc::clone(&model), index_cfg());
    let sizes = index.cluster_sizes();
    let max_cluster: usize = sizes.iter().copied().max().unwrap_or(0);
    assert!(
        max_cluster < model.n_items(),
        "one probe must scan fewer items than the catalog"
    );
    for user in [0usize, 21] {
        let pruned = index.top_items(user, 5, 1).expect("pruned");
        let full = exhaustive
            .top_items(user, model.n_items(), None)
            .expect("exhaustive full ranking");
        for hit in &pruned {
            let exact = full
                .iter()
                .find(|h| h.id == hit.id)
                .expect("pruned id exists in catalog ranking");
            assert_eq!(
                hit.score.to_bits(),
                exact.score.to_bits(),
                "user {user} id {} must carry the exact model score",
                hit.id
            );
        }
    }
}
