//! Concurrency stress suite for the multi-worker serving front-end
//! (ISSUE 7): M producer threads × N workers under both admission
//! policies must deliver **exactly one reply per request** (scored or
//! typed shed), never deadlock — including drop mid-flight — and keep
//! scores bitwise equal to a single-threaded [`Scorer`]; overload above
//! capacity must shed with [`ServeError::Overloaded`] (never panic,
//! never starve a partition) with shed counts reconciling against
//! [`mgbr_serve::ServeMetrics`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mgbr_core::{FrozenModel, Mgbr, MgbrConfig};
use mgbr_data::{synthetic, SyntheticConfig};
use mgbr_serve::{Admission, BatcherConfig, PoolConfig, Scorer, ServeError, WorkerPool};
use mgbr_tensor::set_threads;

fn frozen() -> Arc<FrozenModel> {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    Arc::new(Mgbr::new(MgbrConfig::tiny(), &ds).freeze())
}

/// M producers × N workers × both admissions: every request (including
/// deliberately bad ids) gets exactly one reply, Ok scores are bitwise
/// equal to the single-threaded scorer, and the counters reconcile.
#[test]
fn m_producers_n_workers_exactly_one_reply_bitwise() {
    let model = frozen();
    let nu = model.n_users();
    let reference = Scorer::new(Arc::clone(&model));
    for workers in [1usize, 2, 4] {
        for admission in [Admission::Shared, Admission::HashPartitioned] {
            let pool = Arc::new(WorkerPool::new(
                Arc::clone(&model),
                PoolConfig {
                    workers,
                    admission,
                    batcher: BatcherConfig {
                        max_batch: 8,
                        max_wait: Duration::from_micros(200),
                        queue_cap: 4096,
                        default_deadline: None,
                    },
                    slo_us: None,
                },
            ));
            const PRODUCERS: usize = 6;
            const PER_PRODUCER: usize = 40;
            let mut handles = Vec::new();
            for t in 0..PRODUCERS {
                let pool = Arc::clone(&pool);
                handles.push(thread::spawn(move || {
                    let mut replies = Vec::new();
                    for j in 0..PER_PRODUCER {
                        let u = (t * 7 + j) % 12;
                        let i = (t + j * 3) % 9;
                        let reply = match j % 4 {
                            0 | 1 => (u, i, 0, pool.score_item(u, i)),
                            // Task B interleaved with Task A.
                            2 => (u, i, 1, pool.score_participant(u, i, (u + 1) % 12)),
                            // Adversarial: out-of-range user must come
                            // back as BadRequest, not poison neighbors.
                            _ => (usize::MAX, i, 0, pool.score_item(usize::MAX, i)),
                        };
                        replies.push(reply);
                    }
                    replies
                }));
            }
            let mut ok = 0u64;
            let mut bad = 0u64;
            for h in handles {
                let replies = h.join().expect("producer thread");
                assert_eq!(replies.len(), PER_PRODUCER, "exactly one reply each");
                for (u, i, task, r) in replies {
                    match r {
                        Ok(score) => {
                            ok += 1;
                            let want = if task == 0 {
                                reference.score_item(u, i).expect("reference")
                            } else {
                                reference
                                    .score_participant(u, i, (u + 1) % 12)
                                    .expect("reference")
                            };
                            assert_eq!(
                                score.to_bits(),
                                want.to_bits(),
                                "workers={workers} {admission:?} ({u},{i}) task {task}"
                            );
                        }
                        Err(ServeError::BadRequest(_)) => {
                            bad += 1;
                            assert!(u >= nu, "only bad ids may be rejected");
                        }
                        Err(e) => panic!("unexpected error under {admission:?}: {e}"),
                    }
                }
            }
            assert_eq!(ok + bad, (PRODUCERS * PER_PRODUCER) as u64);
            assert_eq!(bad, (PRODUCERS * (PER_PRODUCER / 4)) as u64);
            let m = pool.metrics();
            assert_eq!(m.requests, ok, "served counter reconciles");
            assert_eq!(m.shed, 0, "nothing shed under a roomy queue");
            assert_eq!(m.latency.count(), ok);
            // Every worker's snapshot folds into the merged view.
            let per_worker = pool.per_worker();
            assert_eq!(per_worker.len(), workers);
            assert_eq!(per_worker.iter().map(|w| w.requests).sum::<u64>(), ok);
        }
    }
}

/// Kernel thread count (MGBR_THREADS) is a pure wall-clock knob: pool
/// scores are bitwise identical at threads 1/2/4.
#[test]
fn pool_scores_bitwise_stable_across_kernel_threads() {
    let model = frozen();
    let reference = Scorer::new(Arc::clone(&model));
    let expect: Vec<u32> = (0..10usize)
        .map(|j| {
            reference
                .score_item(j % 5, j % 7)
                .expect("reference")
                .to_bits()
        })
        .collect();
    for t in [1usize, 2, 4] {
        set_threads(t);
        let pool = WorkerPool::new(
            Arc::clone(&model),
            PoolConfig {
                workers: 2,
                admission: Admission::HashPartitioned,
                batcher: BatcherConfig::default(),
                slo_us: None,
            },
        );
        for (j, &want) in expect.iter().enumerate() {
            let got = pool.score_item(j % 5, j % 7).expect("pool score");
            assert_eq!(got.to_bits(), want, "threads {t}, request {j}");
        }
    }
    set_threads(1);
}

/// Dropping the pool mid-flight must deadlock nothing: requests admitted
/// before shutdown are still answered (graceful drain), later
/// submissions fail with the typed `ShutDown`, and every producer joins.
#[test]
fn drop_mid_flight_answers_admitted_and_rejects_late() {
    let model = frozen();
    let pool = Arc::new(WorkerPool::new(
        Arc::clone(&model),
        PoolConfig {
            workers: 3,
            admission: Admission::Shared,
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                queue_cap: 4096,
                default_deadline: None,
            },
            slo_us: None,
        },
    ));
    let answered = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let mut producers = Vec::new();
    for t in 0..4usize {
        // Producers hold only a Weak handle, so the main thread's drop
        // genuinely tears the pool down while they are mid-request; the
        // last transient upgrade runs Drop (drain + join) on a producer
        // thread, concurrent with other producers blocked on replies.
        let weak = Arc::downgrade(&pool);
        let answered = Arc::clone(&answered);
        let rejected = Arc::clone(&rejected);
        producers.push(thread::spawn(move || {
            for j in 0..400usize {
                let Some(p) = weak.upgrade() else {
                    rejected.fetch_add(1, Ordering::Relaxed);
                    break;
                };
                match p.score_item((t + j) % 8, j % 6) {
                    Ok(_) => {
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServeError::ShutDown) | Err(ServeError::Canceled) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected error mid-drop: {e}"),
                }
            }
        }));
    }
    // Let the producers get in flight, then tear the pool down under
    // them. Drain + join must not deadlock (the test would hang here or
    // in the producer joins otherwise).
    thread::sleep(Duration::from_millis(5));
    drop(pool);
    for p in producers {
        p.join().expect("producer survived the drop");
    }
    assert!(
        answered.load(Ordering::Relaxed) > 0,
        "some requests were served before the drop"
    );
}

/// Open-loop arrival far above capacity: a long coalescing window plus a
/// tiny queue makes shedding deterministic. Every rejection is the typed
/// `Overloaded`, the shed count reconciles with `ServeMetrics`, and —
/// under hash partitioning — flooding one partition never starves
/// another (its worker keeps answering).
#[test]
fn overload_sheds_typed_reconciled_and_no_partition_starves() {
    let model = frozen();
    let pool = Arc::new(WorkerPool::new(
        Arc::clone(&model),
        PoolConfig {
            workers: 2,
            admission: Admission::HashPartitioned,
            batcher: BatcherConfig {
                // The worker coalesces for up to 50 ms, so a burst far
                // beyond queue_cap must shed while it waits.
                max_batch: 4096,
                max_wait: Duration::from_millis(50),
                queue_cap: 8,
                default_deadline: None,
            },
            slo_us: None,
        },
    ));
    // Find users routed to each of the two partitions.
    let user_a = (0..64usize)
        .find(|&u| pool.partition_of(u) == 0)
        .expect("a user on partition 0");
    let user_b = (0..64usize)
        .find(|&u| pool.partition_of(u) == 1)
        .expect("a user on partition 1");

    // Flood partition A with a burst of non-blocking submissions.
    const FLOOD: usize = 1000;
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for j in 0..FLOOD {
        match pool.submit_item(user_a, j % 5) {
            Ok(h) => admitted.push(h),
            Err(ServeError::Overloaded { capacity, .. }) => {
                assert_eq!(capacity, 8, "shed reports the configured bound");
                shed += 1;
            }
            Err(e) => panic!("overload must shed with Overloaded, got {e}"),
        }
    }
    assert!(
        shed > 0,
        "a {FLOOD}-burst against an 8-deep queue must shed"
    );

    // The other partition keeps serving while A is saturated.
    let b = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || pool.score_item(user_b, 0))
    };
    assert!(
        b.join().expect("partition-B producer").is_ok(),
        "partition B starved while partition A was overloaded"
    );

    // Every admitted request still resolves to a score.
    let served = admitted.len() as u64;
    for h in admitted {
        h.wait().expect("admitted request must be answered");
    }
    let m = pool.metrics();
    assert_eq!(m.shed, shed, "metrics shed reconciles with typed errors");
    assert_eq!(served + shed, FLOOD as u64, "admitted + shed == offered");
    assert_eq!(m.requests, served + 1, "flood + the partition-B probe");
    let per_worker = pool.per_worker();
    assert_eq!(per_worker[0].shed, shed, "shed attributed to partition 0");
    assert_eq!(per_worker[1].shed, 0);
    assert!(
        per_worker[1].requests >= 1,
        "partition B's worker made progress"
    );
}
