//! Serving quickstart: train a tiny MGBR, freeze it to a serving
//! artifact, load it back, and answer one query per task through the
//! online-inference stack — with latencies printed.
//!
//! ```sh
//! cargo run --release --example serving_quickstart
//! ```

use std::sync::Arc;
use std::time::Instant;

use mgbr_core::{train, FrozenModel, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{filter_min_interactions, split_dataset, synthetic, SyntheticConfig};
use mgbr_serve::Retriever;

fn main() {
    // 1. Train a tiny model (see examples/quickstart.rs for the full
    //    training walkthrough).
    let raw = synthetic::generate(&SyntheticConfig {
        n_users: 200,
        n_items: 80,
        n_groups: 900,
        ..SyntheticConfig::default()
    });
    let (dataset, _) = filter_min_interactions(&raw, 5);
    let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);
    let cfg = MgbrConfig {
        d: 8,
        t_size: 4,
        ..MgbrConfig::repro_scale()
    };
    let mut model = Mgbr::new(cfg, &split.train_dataset());
    let tc = TrainConfig {
        epochs: 3,
        ..TrainConfig::repro_scale()
    };
    train(&mut model, &dataset, &split, &tc).expect("training failed");
    println!(
        "trained MGBR: {} users, {} items, {} parameters",
        model.n_users(),
        model.n_items(),
        model.param_count()
    );

    // 2. Freeze: materialize embeddings + weights into a compact,
    //    checksummed artifact, and round-trip it through disk — exactly
    //    what a model-push to a serving fleet would do.
    let t0 = Instant::now();
    let frozen = model.freeze();
    let path = std::env::temp_dir().join("mgbr_quickstart.frozen");
    frozen.save_atomic(&path).expect("save artifact");
    let loaded = Arc::new(FrozenModel::load_from_file(&path).expect("load artifact"));
    println!(
        "frozen artifact: {} bytes at {} (freeze+save+load took {:.1} ms)",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display(),
        t0.elapsed().as_secs_f64() * 1e3,
    );

    // 3. Task A: top-10 items for initiator 7 over the full catalog.
    //    The retriever chunks the catalog through tape-free kernels and
    //    ranks with the deterministic partial-select.
    let retriever = Retriever::new(Arc::clone(&loaded));
    let t_a = Instant::now();
    let top_items = retriever.top_items(7, 10, None).expect("task A retrieval");
    let a_us = t_a.elapsed().as_micros();
    println!("\nTask A — top 10 items for initiator 7 ({a_us} µs):");
    for hit in &top_items {
        println!("  item {:>4}  logit {:+.4}", hit.id, hit.score);
    }

    // 4. Task B: top-10 participants to invite into the group
    //    (user 7, best item), excluding the initiator via the
    //    candidate-subset filter.
    let best_item = top_items[0].id;
    let candidates: Vec<usize> = (0..loaded.n_users()).filter(|&p| p != 7).collect();
    let t_b = Instant::now();
    let top_parts = retriever
        .top_participants(7, best_item, 10, Some(&candidates))
        .expect("task B retrieval");
    let b_us = t_b.elapsed().as_micros();
    println!("\nTask B — top 10 participants for group (user 7, item {best_item}) ({b_us} µs):");
    for hit in &top_parts {
        println!("  user {:>4}  logit {:+.4}", hit.id, hit.score);
    }

    println!(
        "\nScores are bitwise identical to the training-path scorer — \
         see tests/serving_parity.rs for the enforced guarantee."
    );
    let _ = std::fs::remove_file(&path);
}
