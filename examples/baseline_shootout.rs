//! Baseline shootout: MGBR against all six baselines on one small
//! dataset — a fast version of the paper's Table III.
//!
//! ```sh
//! cargo run --release --example baseline_shootout
//! ```

use mgbr_baselines::{
    train_baseline, Baseline, BaselineConfig, BaselineScorer, DeepMf, DiffNet, Eatnn, Gbgcn, Gbmf,
    Ngcf,
};
use mgbr_core::{train, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{
    filter_min_interactions, split_dataset, synthetic, DataSplit, Dataset, Sampler,
    SyntheticConfig, TaskAInstance, TaskBInstance,
};
use mgbr_eval::{evaluate_task_a, evaluate_task_b, GroupBuyScorer};

struct Arena {
    dataset: Dataset,
    split: DataSplit,
    test_a: Vec<TaskAInstance>,
    test_b: Vec<TaskBInstance>,
    tc: TrainConfig,
}

impl Arena {
    fn report(&self, scorer: &dyn GroupBuyScorer, params: usize) {
        let ma = evaluate_task_a(scorer, &self.test_a, 10);
        let mb = evaluate_task_b(scorer, &self.test_b, 10);
        println!(
            "| {:<8} | {:>8} | {:.4}   | {:.4}    | {:.4}   | {:.4}    |",
            scorer.name(),
            params,
            ma.mrr,
            ma.ndcg,
            mb.mrr,
            mb.ndcg
        );
    }

    fn run_baseline<M: Baseline>(&self, mut model: M) {
        train_baseline(&mut model, &self.dataset, &self.split, &self.tc);
        let params = model.param_count();
        self.report(&BaselineScorer::freeze(&model), params);
    }
}

fn main() {
    let raw = synthetic::generate(&SyntheticConfig {
        n_users: 300,
        n_items: 120,
        n_groups: 1500,
        ..SyntheticConfig::default()
    });
    let (dataset, _) = filter_min_interactions(&raw, 5);
    let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);
    let mut sampler = Sampler::new(&dataset, 555);
    let arena = Arena {
        test_a: sampler.task_a_instances(&split.test, 9),
        test_b: sampler.task_b_instances(&split.test, 9),
        dataset,
        split,
        tc: TrainConfig {
            epochs: 5,
            ..TrainConfig::repro_scale()
        },
    };

    println!("| Model    | params   | A MRR@10 | A NDCG@10 | B MRR@10 | B NDCG@10 |");
    println!("|----------|----------|----------|-----------|----------|-----------|");

    let bcfg = BaselineConfig {
        d: 24,
        layers: 2,
        seed: 42,
    };
    let train_ds = arena.split.train_dataset();
    arena.run_baseline(DeepMf::new(&bcfg, &train_ds));
    arena.run_baseline(Ngcf::new(&bcfg, &train_ds));
    arena.run_baseline(DiffNet::new(&bcfg, &train_ds));
    arena.run_baseline(Eatnn::new(&bcfg, &train_ds));
    arena.run_baseline(Gbgcn::new(&bcfg, &train_ds));
    arena.run_baseline(Gbmf::new(&bcfg, &train_ds));

    let cfg = MgbrConfig {
        d: 12,
        t_size: 6,
        ..MgbrConfig::repro_scale()
    };
    let mut mgbr = Mgbr::new(cfg, &train_ds);
    train(&mut mgbr, &arena.dataset, &arena.split, &arena.tc).expect("training failed");
    let params = mgbr.param_count();
    arena.report(&mgbr.scorer(), params);

    println!("\nExpect MGBR to lead on both tasks, with the larger margin on Task B");
    println!("(no baseline has a dedicated participant-recommendation pathway).");
}
