//! Ablation explorer: train every MGBR variant on one small dataset and
//! compare the two sub-tasks side by side — a fast, interactive version
//! of the paper's Table IV.
//!
//! ```sh
//! cargo run --release --example ablation_explorer
//! ```

use mgbr_core::{train, Mgbr, MgbrConfig, MgbrVariant, TrainConfig};
use mgbr_data::{filter_min_interactions, split_dataset, synthetic, Sampler, SyntheticConfig};
use mgbr_eval::{evaluate_task_a, evaluate_task_b};

fn main() {
    let raw = synthetic::generate(&SyntheticConfig {
        n_users: 300,
        n_items: 120,
        n_groups: 1500,
        ..SyntheticConfig::default()
    });
    let (dataset, _) = filter_min_interactions(&raw, 5);
    let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);

    // Identical candidate lists for every variant.
    let mut sampler = Sampler::new(&dataset, 1234);
    let test_a = sampler.task_a_instances(&split.test, 9);
    let test_b = sampler.task_b_instances(&split.test, 9);

    let base_cfg = MgbrConfig {
        d: 12,
        t_size: 6,
        ..MgbrConfig::repro_scale()
    };
    let tc = TrainConfig {
        epochs: 5,
        ..TrainConfig::repro_scale()
    };

    println!("| Variant   | params   | A MRR@10 | A NDCG@10 | B MRR@10 | B NDCG@10 |");
    println!("|-----------|----------|----------|-----------|----------|-----------|");
    let mut results = Vec::new();
    for variant in MgbrVariant::all() {
        let mut model = Mgbr::new(
            base_cfg.clone().with_variant(variant),
            &split.train_dataset(),
        );
        let report = train(&mut model, &dataset, &split, &tc).expect("training failed");
        let scorer = model.scorer();
        let ma = evaluate_task_a(&scorer, &test_a, 10);
        let mb = evaluate_task_b(&scorer, &test_b, 10);
        println!(
            "| {:<9} | {:>8} | {:.4}   | {:.4}    | {:.4}   | {:.4}    |",
            variant.label(),
            report.param_count,
            ma.mrr,
            ma.ndcg,
            mb.mrr,
            mb.ndcg
        );
        results.push((variant, ma.mrr, mb.mrr));
    }

    let full = results
        .iter()
        .find(|(v, _, _)| *v == MgbrVariant::Full)
        .expect("full variant trained");
    println!("\nReading the table (the paper's Table IV claims, at miniature scale):");
    for (v, a, b) in &results {
        if *v == MgbrVariant::Full {
            continue;
        }
        println!(
            "  {:<9} Δ Task A MRR: {:+.4}   Δ Task B MRR: {:+.4}",
            v.label(),
            a - full.1,
            b - full.2
        );
    }
    println!("\nExpect the -M / -M-R rows (shared experts removed) to lose the most,");
    println!("and -G (generic gates) to hurt Task B more than Task A.");
}
