//! Serve-while-learning, end to end: temporal split → offline train →
//! serve the frozen artifact → replay the post-boundary stream while
//! serving — drift triggers incremental fine-tuning, cold entities fold
//! in, each accepted update hot-swaps into the pool — with every reply
//! generation-stamped and zero admitted requests dropped.
//!
//! ```sh
//! cargo run --release --example online_loop
//! ```

use std::sync::Arc;

use mgbr_core::{train, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{synthetic, temporal_split, DataSplit, SyntheticConfig, UpdateEvent};
use mgbr_online::{ArtifactPublisher, BatchOutcome, OnlineConfig, OnlineLoop};
use mgbr_serve::{PoolConfig, StalePolicy, SyncedItemIndex, WorkerPool};

fn main() {
    // 1. Temporal split: train on the earliest 70% of deal groups, hold
    //    the rest back as the live stream. No training on the future.
    //    A few late groups reference users/items beyond the generated
    //    id space — genuinely cold entities only the stream knows.
    let ds = {
        let gen = synthetic::generate(&SyntheticConfig {
            n_users: 200,
            n_items: 80,
            n_groups: 900,
            ..SyntheticConfig::default()
        });
        let last = gen.groups.iter().map(|g| g.timestamp).max().unwrap_or(0);
        let (nu, ni) = (gen.n_users as u32, gen.n_items as u32);
        let mut groups = gen.groups.clone();
        groups.push(mgbr_data::DealGroup::new(nu, ni, vec![3, 11]).at(last + 1));
        groups.push(mgbr_data::DealGroup::new(7, 2, vec![nu, nu + 1]).at(last + 2));
        groups.push(mgbr_data::DealGroup::new(nu + 1, ni + 1, vec![nu, 5]).at(last + 3));
        mgbr_data::Dataset::new(gen.n_users + 2, gen.n_items + 2, groups)
    };
    let split = temporal_split(&ds, 0.7);
    let base = split.train_dataset();
    println!(
        "temporal split: {} train groups (boundary t={}), {} streaming; \
         base id space {}x{} of {}x{}",
        split.train.len(),
        split.boundary(),
        split.tail.len(),
        base.n_users,
        base.n_items,
        ds.n_users,
        ds.n_items,
    );

    // 2. Offline train on the prefix only.
    let cfg = MgbrConfig {
        d: 8,
        t_size: 4,
        ..MgbrConfig::repro_scale()
    };
    let mut model = Mgbr::new(cfg, &base);
    let offline = DataSplit {
        n_users: base.n_users,
        n_items: base.n_items,
        train: base.groups.clone(),
        val: Vec::new(),
        test: Vec::new(),
    };
    let tc = TrainConfig {
        epochs: 3,
        ..TrainConfig::repro_scale()
    };
    train(&mut model, &base, &offline, &tc).expect("offline training failed");

    // 3. Serve the frozen prefix model from a worker pool, with a
    //    pruned retrieval index subscribed to the pool's artifact slot.
    let pool = WorkerPool::new(
        Arc::new(model.freeze()),
        PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        },
    );
    let mut index = SyncedItemIndex::build(
        pool.artifact_slot(),
        Default::default(),
        StalePolicy::Rebuild,
    );

    // 4. The online loop: drift detection over a simulated serving
    //    metric, incremental fine-tuning, fold-in ledger, publisher.
    let mut online_cfg = OnlineConfig::from_env().expect("MGBR_ONLINE_* knobs");
    // Demo-friendly defaults for the knobs the environment leaves
    // unset: short rounds, gentle lr, and batches small enough that the
    // drift window warms up before the simulated metric craters.
    if std::env::var("MGBR_ONLINE_ROUNDS").is_err() {
        online_cfg.fine_tune.rounds = 1;
    }
    if std::env::var("MGBR_ONLINE_LR").is_err() {
        online_cfg.fine_tune.lr = 5e-4;
    }
    if std::env::var("MGBR_ONLINE_EVENT_BATCH").is_err() {
        online_cfg.event_batch = 16;
    }
    let event_batch = online_cfg.event_batch;
    let base_users = base.n_users;
    let mut driver = OnlineLoop::new(model, base, online_cfg).expect("online loop");
    let mut publisher = ArtifactPublisher::new(None);

    // 5. Replay the stream. Each batch: serve a few requests against
    //    the live pool (generation-stamped replies, zero drops), then
    //    hand the events plus a serving metric to the loop. The metric
    //    is simulated as healthy until mid-stream, then cratered —
    //    standing in for the recall probes a production loop would run.
    let batches = split.event_batches(event_batch);
    let drift_at = batches.len() / 2;
    let mut admitted = 0u64;
    let mut dropped = 0u64;
    let mut last_generation = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        // Serve while learning: a burst of warm-user requests per event
        // batch, plus a retrieval query through the synced index.
        for j in 0..16usize {
            let user = (i * 7 + j * 3) % 20;
            match pool.submit_item(user, (i + j) % 10) {
                Ok(handle) => {
                    let reply = handle.wait_reply();
                    admitted += 1;
                    if reply.result.is_err() {
                        dropped += 1;
                    }
                    last_generation = reply.generation;
                }
                Err(e) => println!("  shed before admission: {e}"),
            }
        }
        let _hits = index
            .top_items((i * 7) % 20, 5, 2)
            .expect("index query (auto-rebuild on swap)");

        let metric = if i < drift_at { 0.9 } else { 0.45 };
        match driver
            .ingest_batch(batch, metric)
            .expect("online loop batch")
        {
            BatchOutcome::Stable => {}
            BatchOutcome::RolledBack => println!("batch {i}: metric anomaly — rolled back"),
            BatchOutcome::FineTuned(s) => {
                println!(
                    "batch {i}: drift → fine-tuned {} round(s), {} steps, final loss {:.4}{}",
                    s.rounds,
                    s.steps,
                    s.final_loss.unwrap_or(f32::NAN),
                    if s.rolled_back { " [rolled back]" } else { "" },
                );
                let receipt = publisher.publish(&driver, &pool).expect("publish");
                println!(
                    "  published generation {} (was {}): id space now {}x{}",
                    receipt.new_generation,
                    receipt.old_generation,
                    driver.ledger().target_users(),
                    driver.ledger().target_items(),
                );
            }
        }
    }

    // 6. Final update + publish so the artifact reflects the whole
    //    stream, then serve a cold (folded-in) user through the pool.
    driver.update().expect("final fine-tune");
    let receipt = publisher.publish(&driver, &pool).expect("final publish");
    let cold_user = split.update_events().iter().find_map(|e| match e {
        UpdateEvent::NewUser { user, .. } if (*user as usize) >= base_users => Some(*user as usize),
        _ => None,
    });
    if let Some(u) = cold_user {
        let reply = pool
            .submit_item(u, 0)
            .expect("cold user admission")
            .wait_reply();
        println!(
            "cold user {u}: score {:?} from generation {} (folded in, never trained)",
            reply.result, reply.generation,
        );
        assert_eq!(reply.generation, receipt.new_generation);
    }

    let stats = driver.stats();
    println!(
        "\nstream done: {} events ({} fresh groups, {} cold-routed), \
         {} fine-tune cycle(s), {} rollback(s), {} swap(s), last served generation {}",
        stats.events,
        stats.groups_in_space,
        stats.groups_cold,
        stats.fine_tunes,
        stats.rollbacks,
        publisher.swaps(),
        last_generation,
    );
    let metrics = pool.metrics();
    println!(
        "serving: {admitted} admitted, {dropped} dropped ({} answered across all generations)",
        metrics.requests,
    );
    assert_eq!(dropped, 0, "admitted requests must never be dropped");
}
