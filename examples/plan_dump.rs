//! Plan dump: render the execution-plan IR that both the trainer and
//! the frozen scorer run — per-op output shapes, FLOP estimates, and
//! the effect of the serving-side affine-fusion pass.
//!
//! ```sh
//! cargo run --release --example plan_dump
//! ```

use mgbr_core::{Mgbr, MgbrConfig};
use mgbr_data::{synthetic, SyntheticConfig};
use mgbr_plan::{build_embed_plan, render, EmbedSpec, ShapeEnv};

fn main() {
    let ds = synthetic::generate(&SyntheticConfig::tiny());
    let cfg = MgbrConfig::tiny();
    let model = Mgbr::new(cfg.clone(), &ds);
    let frozen = model.freeze();

    // Shape environment for the scoring plans: one candidate row per
    // input (serving batches just scale the row count), parameter
    // shapes straight from the frozen artifact.
    let obj = 2 * frozen.d();
    let env = ShapeEnv {
        inputs: vec![(1, obj); 3],
        params: frozen
            .params()
            .iter()
            .map(|t| (t.rows(), t.cols()))
            .collect(),
        ..ShapeEnv::default()
    };

    println!("=== stored scoring plan (both heads, unfused) ===");
    print!("{}", render(frozen.plan(), Some(&env)));

    println!("\n=== Task A serving plan (pruned to logit_a, affine-fused) ===");
    print!("{}", render(frozen.serve_plan_a(), Some(&env)));

    let mut unfused = frozen.clone();
    unfused.set_fused(false);
    println!(
        "\nfusion: Task A {} ops -> {} ops, Task B {} ops -> {} ops \
         (bit-identical scores; see tests/serving_parity.rs)",
        unfused.serve_plan_a().ops.len(),
        frozen.serve_plan_a().ops.len(),
        unfused.serve_plan_b().ops.len(),
        frozen.serve_plan_b().ops.len(),
    );

    // The embedding plan reads no inputs: its leaves are the GCN
    // parameters, and gathers/spmms bind to the dataset's graphs. The
    // env below mirrors the synthetic-tiny graph the model was built on.
    let n_users = ds.n_users;
    let n_items = ds.n_items;
    let n_bip = n_users + n_items;
    let spec = EmbedSpec::MultiView {
        gcn_layers: cfg.gcn_layers,
    };
    let embed = build_embed_plan(&spec);
    let embed_env = ShapeEnv {
        inputs: vec![],
        params: embed_param_shapes(cfg.d, cfg.gcn_layers, &[n_bip, n_bip, n_users]),
        idx_lens: vec![n_users, n_items],
        adj_rows: vec![n_bip, n_bip, n_users],
        // Self-loops only — a lower bound; real graphs add one nnz per
        // edge, scaling the spmm FLOP lines linearly.
        adj_nnz: vec![n_bip, n_bip, n_users],
    };
    println!("\n=== multi-view embedding plan ===");
    print!("{}", render(&embed, Some(&embed_env)));
}

/// Parameter shapes of `build_embed_plan`'s MultiView lowering: per
/// GCN, `x0 (n, d)` then `gcn_layers` weight matrices `(d, d)`.
fn embed_param_shapes(d: usize, gcn_layers: usize, rows: &[usize]) -> Vec<(usize, usize)> {
    let mut shapes = Vec::new();
    for &n in rows {
        shapes.push((n, d));
        for _ in 0..gcn_layers {
            shapes.push((d, d));
        }
    }
    shapes
}
