//! A domain walkthrough of the paper's Fig. 1 scenario: the two-phase
//! group-buying flow on an e-commerce platform, end to end.
//!
//! Phase 1 — an *initiator* picks a product from a recommended candidate
//! list and launches a group buying (Task A).
//! Phase 2 — the platform recommends the open group to likely
//! *participants* (Task B), and the deal closes once enough join.
//!
//! ```sh
//! cargo run --release --example group_buying_walkthrough
//! ```

use mgbr_core::{train, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{filter_min_interactions, split_dataset, synthetic, SyntheticConfig};
use mgbr_eval::GroupBuyScorer;

/// How many participants a group needs before the deal is struck.
const DEAL_THRESHOLD: usize = 3;

fn main() {
    // The platform's historical deal-group log.
    let raw = synthetic::generate(&SyntheticConfig {
        n_users: 400,
        n_items: 150,
        n_groups: 2000,
        ..SyntheticConfig::default()
    });
    let (history, _) = filter_min_interactions(&raw, 5);
    let split = split_dataset(&history, (8.0, 1.0, 1.0), 7);

    // Train the recommender over the historical log.
    let cfg = MgbrConfig {
        d: 12,
        t_size: 6,
        ..MgbrConfig::repro_scale()
    };
    let mut model = Mgbr::new(cfg, &split.train_dataset());
    let tc = TrainConfig {
        epochs: 5,
        ..TrainConfig::repro_scale()
    };
    train(&mut model, &history, &split, &tc).expect("training failed");
    let scorer = model.scorer();

    // ---- Phase 1: the initiator opens the app. ----
    let initiator: u32 = 42;
    println!("=== Phase 1: initiator {initiator} browses the candidate product list ===");
    let catalog: Vec<u32> = (0..history.n_items as u32).collect();
    let scores = scorer.score_items(initiator, &catalog);
    let mut ranked: Vec<(u32, f32)> = catalog.iter().copied().zip(scores).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("recommended products (candidate list shown to the initiator):");
    for (rank, (item, s)) in ranked.iter().take(5).enumerate() {
        println!(
            "  #{:<2} product {:>4}   ranking score {s:.4}",
            rank + 1,
            item
        );
    }
    let chosen = ranked[0].0;
    println!("→ initiator {initiator} launches a group buying for product {chosen}\n");

    // ---- Phase 2: the platform pushes the open group to other users. ----
    println!("=== Phase 2: recommending the open group (u={initiator}, i={chosen}) ===");
    let candidates: Vec<u32> = (0..history.n_users as u32)
        .filter(|&p| p != initiator)
        .collect();
    let pscores = scorer.score_participants(initiator, chosen, &candidates);
    let mut pranked: Vec<(u32, f32)> = candidates.iter().copied().zip(pscores).collect();
    pranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut joined = Vec::new();
    println!("platform pushes the group to the highest-scoring users:");
    for (p, s) in pranked.iter().take(DEAL_THRESHOLD + 2) {
        // Model a simple response rule: the pushed user joins if the model
        // is confident (monotone in s(p|u,i); deterministic for the demo).
        let joins = joined.len() < DEAL_THRESHOLD;
        println!(
            "  push → user {p:>4}  ranking score {s:.4}  {}",
            if joins {
                "JOINS the group"
            } else {
                "(group already full)"
            }
        );
        if joins {
            joined.push(*p);
        }
    }

    println!(
        "\n→ deal group <u={initiator}, i={chosen}, G={joined:?}> reached the \
         threshold of {DEAL_THRESHOLD} participants: DEAL CLOSED at the group price."
    );

    // Counterfactual: why Task A must anticipate Task B (the paper's
    // cellphone-vs-book example).
    println!("\n=== Why the sub-tasks interact (the paper's §II-D1 insight) ===");
    let runner_up = ranked[1].0;
    let follow_best: f32 = pranked
        .iter()
        .take(DEAL_THRESHOLD)
        .map(|(_, s)| s)
        .sum::<f32>()
        / DEAL_THRESHOLD as f32;
    let alt_scores = scorer.score_participants(initiator, runner_up, &candidates);
    let mut alt: Vec<f32> = alt_scores;
    alt.sort_by(|a, b| b.total_cmp(a));
    let follow_alt: f32 = alt.iter().take(DEAL_THRESHOLD).sum::<f32>() / DEAL_THRESHOLD as f32;
    println!(
        "mean follow-score of the top-{DEAL_THRESHOLD} candidates:\n  \
         chosen product {chosen:>4}: {follow_best:.4}\n  \
         runner-up {runner_up:>8}: {follow_alt:.4}"
    );
    println!(
        "MGBR's shared experts let the Task A head see this participant appetite, \
         which is exactly the information a per-task model would miss."
    );
}
