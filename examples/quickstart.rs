//! Quickstart: generate a small group-buying dataset, train MGBR for a
//! few epochs, and produce both kinds of recommendation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mgbr_core::{train, Mgbr, MgbrConfig, TrainConfig};
use mgbr_data::{filter_min_interactions, split_dataset, synthetic, Sampler, SyntheticConfig};
use mgbr_eval::{evaluate_task_a, evaluate_task_b, GroupBuyScorer};

fn main() {
    // 1. Data: a synthetic Beibei-like log of deal groups <u, i, G>.
    let raw = synthetic::generate(&SyntheticConfig {
        n_users: 300,
        n_items: 120,
        n_groups: 1500,
        ..SyntheticConfig::default()
    });
    let (dataset, report) = filter_min_interactions(&raw, 5);
    println!(
        "dataset: {} users, {} items, {} deal groups (filter removed {} users)",
        dataset.n_users,
        dataset.n_items,
        dataset.groups.len(),
        report.users_removed
    );

    // 2. Split 7:3:1 and train MGBR on the training partition's graphs.
    let split = split_dataset(&dataset, (7.0, 3.0, 1.0), 42);
    let cfg = MgbrConfig {
        d: 12,
        t_size: 6,
        ..MgbrConfig::repro_scale()
    };
    let mut model = Mgbr::new(cfg, &split.train_dataset());
    println!("MGBR built: {} trainable parameters", model.param_count());

    let tc = TrainConfig {
        epochs: 5,
        ..TrainConfig::repro_scale()
    };
    let trained = train(&mut model, &dataset, &split, &tc).expect("training failed");
    println!("epoch losses: {:?}", trained.epoch_losses);

    // 3. Task A: which item should user 7 launch a group buying for?
    let scorer = model.scorer();
    let candidates: Vec<u32> = (0..dataset.n_items as u32).collect();
    let scores = scorer.score_items(7, &candidates);
    let mut ranked: Vec<(u32, f32)> = candidates.iter().copied().zip(scores).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nTask A — top 5 items for initiator 7:");
    for (item, score) in ranked.iter().take(5) {
        println!("  item {item:>4}  ranking score {score:.4}");
    }

    // 4. Task B: who should join the group (7, best_item)?
    let best_item = ranked[0].0;
    let users: Vec<u32> = (0..dataset.n_users as u32).filter(|&p| p != 7).collect();
    let pscores = scorer.score_participants(7, best_item, &users);
    let mut pranked: Vec<(u32, f32)> = users.iter().copied().zip(pscores).collect();
    pranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nTask B — top 5 participants for group (user 7, item {best_item}):");
    for (p, score) in pranked.iter().take(5) {
        println!("  user {p:>4}  ranking score {score:.4}");
    }

    // 5. Held-out ranking quality.
    let mut sampler = Sampler::new(&dataset, 9);
    let test_a = sampler.task_a_instances(&split.test, 9);
    let test_b = sampler.task_b_instances(&split.test, 9);
    let ma = evaluate_task_a(&scorer, &test_a, 10);
    let mb = evaluate_task_b(&scorer, &test_b, 10);
    println!(
        "\nheld-out: Task A MRR@10 = {:.4}, Task B MRR@10 = {:.4}",
        ma.mrr, mb.mrr
    );
    println!("(uniform-random scoring would sit near 0.29 on 1:9 candidate lists)");
}
